package authsim

import (
	"fmt"
	"io"
)

// The other two programs §5.3 names alongside passwd: "passwd, crypt, and
// su are examples of programs that cannot be controlled by the shell but
// can by expect."

// CryptConfig configures the crypt(1) clone.
type CryptConfig struct {
	// KeyIn/KeyOut, when non-nil, are the terminal the key dialogue uses
	// — crypt's defining rudeness is that the key prompt bypasses stdio
	// ("crypt does this because its input is redirected while it
	// interactively demands an encryption password", §2). Under a pty
	// transport stdin IS the terminal, so leaving these nil converses on
	// stdio, which is exactly what the pty arrangement achieves.
	KeyIn  io.Reader
	KeyOut io.Writer
}

// NewCrypt returns a crypt(1)-alike: it demands a key interactively, then
// transforms stdin to stdout with a (deliberately toy) Vigenère XOR — the
// cryptography is beside the point; the interface is the point.
func NewCrypt(cfg CryptConfig) func(stdin io.Reader, stdout io.Writer) error {
	return func(stdin io.Reader, stdout io.Writer) error {
		keyIn := cfg.KeyIn
		keyOut := cfg.KeyOut
		if keyIn == nil {
			keyIn = stdin
		}
		if keyOut == nil {
			keyOut = stdout
		}
		fmt.Fprint(keyOut, "Enter key: ")
		// Read the key byte-at-a-time: a buffered reader would swallow
		// the head of the data that follows on the same stream.
		key, ok := readLineUnbuffered(keyIn)
		if !ok || key == "" {
			fmt.Fprintln(keyOut, "\ncrypt: no key")
			return fmt.Errorf("crypt: no key")
		}
		fmt.Fprint(keyOut, "\n")
		buf := make([]byte, 4096)
		pos := 0
		for {
			n, err := stdin.Read(buf)
			if n > 0 {
				out := make([]byte, n)
				for i := 0; i < n; i++ {
					out[i] = buf[i] ^ key[pos%len(key)]
					pos++
				}
				if _, werr := stdout.Write(out); werr != nil {
					return nil
				}
			}
			if err != nil {
				return nil
			}
		}
	}
}

// readLineUnbuffered reads one \n- or \r-terminated line a byte at a
// time, consuming nothing past the terminator.
func readLineUnbuffered(r io.Reader) (string, bool) {
	var sb []byte
	one := make([]byte, 1)
	for {
		n, err := r.Read(one)
		if n > 0 {
			c := one[0]
			if c == '\n' || c == '\r' {
				return string(sb), true
			}
			sb = append(sb, c)
		}
		if err != nil {
			return string(sb), len(sb) > 0
		}
	}
}

// SuConfig configures the su(1) clone.
type SuConfig struct {
	// Password for the target account.
	Password string
	// Target account name (default root).
	Target string
}

// NewSu returns an su(1)-alike: one password prompt, then either a root
// shell prompt ("# ") answering a couple of commands, or "Sorry".
func NewSu(cfg SuConfig) func(stdin io.Reader, stdout io.Writer) error {
	target := cfg.Target
	if target == "" {
		target = "root"
	}
	return func(stdin io.Reader, stdout io.Writer) error {
		in := newCRLFReader(stdin)
		fmt.Fprint(stdout, "Password:")
		pw, ok := in.ReadLine()
		fmt.Fprint(stdout, "\r\n")
		if !ok || pw != cfg.Password {
			fmt.Fprint(stdout, "Sorry\r\n")
			return fmt.Errorf("su: authentication failure")
		}
		for {
			fmt.Fprint(stdout, "# ")
			line, ok := in.ReadLine()
			if !ok {
				return nil
			}
			switch line {
			case "whoami":
				fmt.Fprintf(stdout, "%s\r\n", target)
			case "exit", "logout":
				return nil
			case "":
			default:
				fmt.Fprintf(stdout, "%s: not found\r\n", line)
			}
		}
	}
}
