package authsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestCryptRoundTrip(t *testing.T) {
	// Encrypt, then decrypt with the same key, through two sessions.
	encrypt := func(key, plaintext string) string {
		s, err := core.SpawnProgram(&core.Config{MatchMax: 1 << 14}, "crypt", NewCrypt(CryptConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.ExpectMatch("*Enter key: *"); err != nil {
			t.Fatalf("key prompt: %v", err)
		}
		s.Send(key + "\n")
		s.Send(plaintext)
		s.CloseWrite()
		var out strings.Builder
		for {
			r, err := s.ExpectTimeout(2*time.Second, core.Regexp(`(?s).+`), core.EOFCase())
			if r != nil {
				out.WriteString(r.Text)
			}
			if err != nil || r.Eof {
				break
			}
		}
		// Drop the "\n" echoed after the key prompt.
		return strings.TrimPrefix(out.String(), "\n")
	}
	plain := "attack at dawn"
	cipher := encrypt("k3y", plain)
	if cipher == plain {
		t.Fatal("ciphertext equals plaintext")
	}
	back := encrypt("k3y", cipher)
	if back != plain {
		t.Errorf("round trip = %q, want %q", back, plain)
	}
}

func TestCryptNoKey(t *testing.T) {
	s, err := core.SpawnProgram(nil, "crypt", NewCrypt(CryptConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ExpectMatch("*Enter key: *")
	s.Send("\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*no key*")); err != nil {
		t.Fatalf("no complaint: %v", err)
	}
	if code, _ := s.Wait(); code == 0 {
		t.Error("exit 0 without a key")
	}
}

func TestSuSuccess(t *testing.T) {
	s, err := core.SpawnProgram(nil, "su", NewSu(SuConfig{Password: "rootpw"}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ExpectMatch("*Password:*"); err != nil {
		t.Fatalf("prompt: %v", err)
	}
	s.Send("rootpw\n")
	if _, err := s.ExpectMatch("*# *"); err != nil {
		t.Fatalf("no root prompt: %v", err)
	}
	s.Send("whoami\n")
	if _, err := s.ExpectMatch("*root*"); err != nil {
		t.Fatalf("whoami: %v", err)
	}
	s.Send("exit\n")
	if code, _ := s.Wait(); code != 0 {
		t.Errorf("exit %d", code)
	}
}

func TestSuWrongPassword(t *testing.T) {
	s, err := core.SpawnProgram(nil, "su", NewSu(SuConfig{Password: "rootpw"}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ExpectMatch("*Password:*")
	s.Send("guess\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Sorry*")); err != nil {
		t.Fatalf("no rejection: %v", err)
	}
	if code, _ := s.Wait(); code == 0 {
		t.Error("wrong password exited 0")
	}
}
