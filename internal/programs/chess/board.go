// Package chess implements a small but legal chess engine speaking the old
// Unix chess(6) dialogue the paper connects back to back (§2.2, §3.2): the
// user types moves like "p/k2-k3" in descriptive notation and the program
// answers with "1. ... p/k7-k5". The announced form is not directly usable
// as input — exactly the property that forces the paper's read_move /
// send_move translation procedures.
package chess

// The board is 0x88: 128 cells, of which the low nibbles 0-7 of each
// 16-cell row are on-board. Index validity is (sq & 0x88) == 0.

// Piece codes; color is carried separately.
type Piece int8

// Piece kinds.
const (
	Empty Piece = iota
	Pawn
	Knight
	Bishop
	Rook
	Queen
	King
)

// Color of a side.
type Color int8

// Colors.
const (
	White Color = iota
	Black
)

// Opp returns the other color.
func (c Color) Opp() Color { return 1 - c }

func (c Color) String() string {
	if c == White {
		return "white"
	}
	return "black"
}

type square struct {
	piece Piece
	color Color
}

// Board is a complete game position.
type Board struct {
	cells  [128]square
	turn   Color
	moveNo int // full-move counter, 1-based
}

// NewBoard sets up the initial position.
func NewBoard() *Board {
	b := &Board{turn: White, moveNo: 1}
	back := []Piece{Rook, Knight, Bishop, Queen, King, Bishop, Knight, Rook}
	for f := 0; f < 8; f++ {
		b.cells[sq(f, 0)] = square{back[f], White}
		b.cells[sq(f, 1)] = square{Pawn, White}
		b.cells[sq(f, 6)] = square{Pawn, Black}
		b.cells[sq(f, 7)] = square{back[f], Black}
	}
	return b
}

// sq builds an 0x88 index from file (0=a) and rank (0=1st).
func sq(file, rank int) int { return rank*16 + file }

func fileOf(s int) int   { return s & 7 }
func rankOf(s int) int   { return s >> 4 }
func onBoard(s int) bool { return s&0x88 == 0 }

// Turn returns the side to move.
func (b *Board) Turn() Color { return b.turn }

// MoveNumber returns the full-move number (1 before white's first move).
func (b *Board) MoveNumber() int { return b.moveNo }

// Move is a from-to pair with bookkeeping for unmake.
type Move struct {
	From, To int
	piece    Piece
	captured Piece
	capColor Color
	wasCap   bool
	promoted bool
}

var (
	knightOffsets = []int{-33, -31, -18, -14, 14, 18, 31, 33}
	kingOffsets   = []int{-17, -16, -15, -1, 1, 15, 16, 17}
	bishopDirs    = []int{-17, -15, 15, 17}
	rookDirs      = []int{-16, -1, 1, 16}
)

// pseudoMoves appends all pseudo-legal moves for the side to move.
func (b *Board) pseudoMoves(out []Move) []Move {
	us := b.turn
	for s := 0; s < 128; s++ {
		if !onBoard(s) {
			continue
		}
		c := b.cells[s]
		if c.piece == Empty || c.color != us {
			continue
		}
		switch c.piece {
		case Pawn:
			dir := 16
			startRank := 1
			if us == Black {
				dir = -16
				startRank = 6
			}
			fwd := s + dir
			if onBoard(fwd) && b.cells[fwd].piece == Empty {
				out = append(out, Move{From: s, To: fwd, piece: Pawn})
				if rankOf(s) == startRank {
					fwd2 := fwd + dir
					if onBoard(fwd2) && b.cells[fwd2].piece == Empty {
						out = append(out, Move{From: s, To: fwd2, piece: Pawn})
					}
				}
			}
			for _, dc := range []int{dir - 1, dir + 1} {
				t := s + dc
				if onBoard(t) && b.cells[t].piece != Empty && b.cells[t].color != us {
					out = append(out, Move{From: s, To: t, piece: Pawn})
				}
			}
		case Knight:
			out = b.stepMoves(s, knightOffsets, out)
		case King:
			out = b.stepMoves(s, kingOffsets, out)
		case Bishop:
			out = b.slideMoves(s, bishopDirs, out)
		case Rook:
			out = b.slideMoves(s, rookDirs, out)
		case Queen:
			out = b.slideMoves(s, bishopDirs, out)
			out = b.slideMoves(s, rookDirs, out)
		}
	}
	return out
}

func (b *Board) stepMoves(s int, offsets []int, out []Move) []Move {
	us := b.cells[s].color
	for _, d := range offsets {
		t := s + d
		if !onBoard(t) {
			continue
		}
		if b.cells[t].piece == Empty || b.cells[t].color != us {
			out = append(out, Move{From: s, To: t, piece: b.cells[s].piece})
		}
	}
	return out
}

func (b *Board) slideMoves(s int, dirs []int, out []Move) []Move {
	us := b.cells[s].color
	for _, d := range dirs {
		for t := s + d; onBoard(t); t += d {
			if b.cells[t].piece == Empty {
				out = append(out, Move{From: s, To: t, piece: b.cells[s].piece})
				continue
			}
			if b.cells[t].color != us {
				out = append(out, Move{From: s, To: t, piece: b.cells[s].piece})
			}
			break
		}
	}
	return out
}

// attacked reports whether square s is attacked by side by.
func (b *Board) attacked(s int, by Color) bool {
	// Knights.
	for _, d := range knightOffsets {
		t := s + d
		if onBoard(t) && b.cells[t].piece == Knight && b.cells[t].color == by {
			return true
		}
	}
	// King.
	for _, d := range kingOffsets {
		t := s + d
		if onBoard(t) && b.cells[t].piece == King && b.cells[t].color == by {
			return true
		}
	}
	// Pawns: a white pawn attacks diagonally upward, so s is attacked from
	// below-left/right.
	pd := -16
	if by == Black {
		pd = 16
	}
	for _, dc := range []int{pd - 1, pd + 1} {
		t := s + dc
		if onBoard(t) && b.cells[t].piece == Pawn && b.cells[t].color == by {
			return true
		}
	}
	// Sliders.
	for _, d := range bishopDirs {
		for t := s + d; onBoard(t); t += d {
			c := b.cells[t]
			if c.piece == Empty {
				continue
			}
			if c.color == by && (c.piece == Bishop || c.piece == Queen) {
				return true
			}
			break
		}
	}
	for _, d := range rookDirs {
		for t := s + d; onBoard(t); t += d {
			c := b.cells[t]
			if c.piece == Empty {
				continue
			}
			if c.color == by && (c.piece == Rook || c.piece == Queen) {
				return true
			}
			break
		}
	}
	return false
}

// kingSquare locates c's king (-1 if captured, which legality prevents).
func (b *Board) kingSquare(c Color) int {
	for s := 0; s < 128; s++ {
		if onBoard(s) && b.cells[s].piece == King && b.cells[s].color == c {
			return s
		}
	}
	return -1
}

// InCheck reports whether the side to move is in check.
func (b *Board) InCheck() bool {
	k := b.kingSquare(b.turn)
	return k >= 0 && b.attacked(k, b.turn.Opp())
}

// make applies m (which must be pseudo-legal) and returns it annotated for
// unmake.
func (b *Board) make(m Move) Move {
	tgt := b.cells[m.To]
	if tgt.piece != Empty {
		m.wasCap = true
		m.captured = tgt.piece
		m.capColor = tgt.color
	}
	mover := b.cells[m.From]
	b.cells[m.To] = mover
	b.cells[m.From] = square{}
	// Auto-queen promotion.
	if mover.piece == Pawn {
		r := rankOf(m.To)
		if (mover.color == White && r == 7) || (mover.color == Black && r == 0) {
			b.cells[m.To].piece = Queen
			m.promoted = true
		}
	}
	if b.turn == Black {
		b.moveNo++
	}
	b.turn = b.turn.Opp()
	return m
}

// unmake reverses a move returned by make.
func (b *Board) unmake(m Move) {
	b.turn = b.turn.Opp()
	if b.turn == Black {
		b.moveNo--
	}
	mover := b.cells[m.To]
	if m.promoted {
		mover.piece = Pawn
	}
	b.cells[m.From] = mover
	if m.wasCap {
		b.cells[m.To] = square{m.captured, m.capColor}
	} else {
		b.cells[m.To] = square{}
	}
}

// LegalMoves returns every legal move for the side to move.
func (b *Board) LegalMoves() []Move {
	pseudo := b.pseudoMoves(nil)
	legal := pseudo[:0]
	for _, m := range pseudo {
		mm := b.make(m)
		k := b.kingSquare(b.turn.Opp()) // mover's king after the move
		ok := k >= 0 && !b.attacked(k, b.turn)
		b.unmake(mm)
		if ok {
			legal = append(legal, m)
		}
	}
	return legal
}

// Apply plays m if it is legal; it reports success.
func (b *Board) Apply(m Move) bool {
	for _, lm := range b.LegalMoves() {
		if lm.From == m.From && lm.To == m.To {
			b.make(lm)
			return true
		}
	}
	return false
}

// PieceAt returns the piece and color on an 0x88 square.
func (b *Board) PieceAt(s int) (Piece, Color) {
	return b.cells[s].piece, b.cells[s].color
}

// Ascii renders the position for the `show` command, white at the bottom.
func (b *Board) Ascii() string {
	glyphs := map[Piece]byte{Pawn: 'p', Knight: 'n', Bishop: 'b', Rook: 'r', Queen: 'q', King: 'k'}
	out := make([]byte, 0, 9*18)
	for r := 7; r >= 0; r-- {
		out = append(out, byte('1'+r), ' ')
		for f := 0; f < 8; f++ {
			c := b.cells[sq(f, r)]
			if c.piece == Empty {
				out = append(out, '.', ' ')
				continue
			}
			g := glyphs[c.piece]
			if c.color == White {
				g -= 'a' - 'A'
			}
			out = append(out, g, ' ')
		}
		out = append(out, '\n')
	}
	out = append(out, ' ', ' ')
	for f := 0; f < 8; f++ {
		out = append(out, byte('a'+f), ' ')
	}
	out = append(out, '\n')
	return string(out)
}
