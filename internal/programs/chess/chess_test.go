package chess

import (
	"math/rand"
	"strings"
	"testing"
)

func TestInitialPositionMoveCount(t *testing.T) {
	b := NewBoard()
	moves := b.LegalMoves()
	if len(moves) != 20 {
		t.Errorf("initial position has %d legal moves, want 20", len(moves))
	}
}

func TestApplyAndTurnAlternates(t *testing.T) {
	b := NewBoard()
	if b.Turn() != White {
		t.Fatal("white must start")
	}
	m, err := ParseMove("p/k2-k4", White)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Apply(m) {
		t.Fatal("e2-e4 rejected")
	}
	if b.Turn() != Black {
		t.Error("turn did not pass to black")
	}
	if b.MoveNumber() != 1 {
		t.Errorf("move number %d, want 1 (black still to move)", b.MoveNumber())
	}
	bm, err := ParseMove("p/k2-k4", Black) // e7-e5 from black's perspective
	if err != nil {
		t.Fatal(err)
	}
	if !b.Apply(bm) {
		t.Fatal("black e7-e5 rejected")
	}
	if b.MoveNumber() != 2 {
		t.Errorf("move number %d, want 2", b.MoveNumber())
	}
}

func TestIllegalMovesRejected(t *testing.T) {
	b := NewBoard()
	for _, text := range []string{
		"p/k2-k5",   // pawn three forward
		"n/qr1-qr3", // rook square with knight move? (rook can't jump)
		"k/k1-k3",   // king two forward
		"p/k7-k5",   // moving black's pawn as white (empty from white's e7? e7 holds black pawn — moving opponent's piece)
	} {
		m, err := ParseMove(text, White)
		if err != nil {
			continue // parse failure also counts as rejection
		}
		if b.Apply(m) {
			t.Errorf("illegal move %q was accepted", text)
		}
	}
}

func TestDescriptivePerspective(t *testing.T) {
	// "k2" is e2 for white but e7 for black.
	w, err := ParseMove("p/k2-k3", White)
	if err != nil {
		t.Fatal(err)
	}
	if w.From != sq(4, 1) || w.To != sq(4, 2) {
		t.Errorf("white k2-k3 = %d->%d, want e2->e3", w.From, w.To)
	}
	b, err := ParseMove("p/k2-k3", Black)
	if err != nil {
		t.Fatal(err)
	}
	if b.From != sq(4, 6) || b.To != sq(4, 5) {
		t.Errorf("black k2-k3 = %d->%d, want e7->e6", b.From, b.To)
	}
}

func TestNotationRoundTrip(t *testing.T) {
	// Every legal move formats and re-parses to the same squares, for both
	// perspectives, across a few random positions.
	r := rand.New(rand.NewSource(7))
	b := NewBoard()
	for ply := 0; ply < 40; ply++ {
		mover := b.Turn()
		legal := b.LegalMoves()
		if len(legal) == 0 {
			break
		}
		for _, m := range legal {
			text := FormatMove(b, m, mover)
			back, err := ParseMove(text, mover)
			if err != nil {
				t.Fatalf("ply %d: ParseMove(%q): %v", ply, text, err)
			}
			if back.From != m.From || back.To != m.To {
				t.Fatalf("ply %d: %q round-tripped to %d->%d, want %d->%d",
					ply, text, back.From, back.To, m.From, m.To)
			}
		}
		b.Apply(legal[r.Intn(len(legal))])
	}
}

func TestChooseMovePrefersCapture(t *testing.T) {
	b := NewBoard()
	// 1. e4 d5: white can now capture exd5.
	mustApply(t, b, "p/k2-k4", White)
	mustApply(t, b, "p/q2-q4", Black) // d7-d5
	r := rand.New(rand.NewSource(1))
	m, ok := ChooseMove(b, r)
	if !ok {
		t.Fatal("no move chosen")
	}
	if p, _ := b.PieceAt(m.To); p == Empty {
		t.Errorf("engine ignored the free pawn capture; chose %s", FormatMove(b, m, White))
	}
}

func TestSelfPlayStaysLegal(t *testing.T) {
	// Property: two engines choosing moves against one board never reach
	// an inconsistent state; every chosen move is legal by construction
	// and kings never disappear.
	r := rand.New(rand.NewSource(42))
	b := NewBoard()
	for ply := 0; ply < 200; ply++ {
		m, ok := ChooseMove(b, r)
		if !ok {
			return // mate or stalemate: fine
		}
		if !b.Apply(m) {
			t.Fatalf("ply %d: engine chose illegal move", ply)
		}
		if b.kingSquare(White) < 0 || b.kingSquare(Black) < 0 {
			t.Fatalf("ply %d: a king vanished", ply)
		}
	}
}

func TestAsciiBoard(t *testing.T) {
	b := NewBoard()
	art := b.Ascii()
	if !strings.Contains(art, "R N B Q K B N R") {
		t.Errorf("initial back rank missing:\n%s", art)
	}
	if !strings.Contains(art, "a b c d e f g h") {
		t.Errorf("file legend missing:\n%s", art)
	}
}

func mustApply(t *testing.T, b *Board, text string, c Color) {
	t.Helper()
	m, err := ParseMove(text, c)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	if !b.Apply(m) {
		t.Fatalf("move %q rejected", text)
	}
}
