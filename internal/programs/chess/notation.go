package chess

import (
	"fmt"
	"strings"
)

// Descriptive notation, the chess(6) dialect of the paper's example move
// "p/k2-k3": a piece letter, a slash, and from/to squares written as
// <file-code><rank>, where the file codes are qr qn qb q k kb kn kr and
// ranks count from the MOVER's side of the board. So "k2" is e2 for white
// but e7 for black — the perspective flip that makes chess output and
// input incompatible without a translating script.

var fileCodes = [8]string{"qr", "qn", "qb", "q", "k", "kb", "kn", "kr"}

var pieceLetters = map[Piece]string{
	Pawn: "p", Knight: "n", Bishop: "b", Rook: "r", Queen: "q", King: "k",
}

// formatSquare renders an 0x88 square in mover-perspective descriptive.
func formatSquare(s int, mover Color) string {
	f, r := fileOf(s), rankOf(s)
	if mover == Black {
		r = 7 - r
	}
	return fmt.Sprintf("%s%d", fileCodes[f], r+1)
}

// FormatMove renders m as descriptive notation for the given mover.
func FormatMove(b *Board, m Move, mover Color) string {
	p, _ := b.PieceAt(m.From)
	letter := pieceLetters[p]
	if letter == "" {
		letter = "p"
	}
	return fmt.Sprintf("%s/%s-%s", letter, formatSquare(m.From, mover), formatSquare(m.To, mover))
}

// parseSquare decodes a descriptive square for the given mover. The file
// codes are matched longest-first so "kb3" is not read as "k" + junk.
func parseSquare(s string, mover Color) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	file := -1
	var rest string
	// Longest codes first.
	for _, cand := range []string{"qr", "qn", "qb", "kb", "kn", "kr", "q", "k"} {
		if strings.HasPrefix(s, cand) {
			for fi, code := range fileCodes {
				if code == cand {
					file = fi
					break
				}
			}
			rest = s[len(cand):]
			break
		}
	}
	if file < 0 {
		// Accept plain algebraic files a-h as a convenience.
		if len(s) >= 1 && s[0] >= 'a' && s[0] <= 'h' {
			file = int(s[0] - 'a')
			rest = s[1:]
		} else {
			return 0, fmt.Errorf("bad square %q", s)
		}
	}
	if len(rest) != 1 || rest[0] < '1' || rest[0] > '8' {
		return 0, fmt.Errorf("bad rank in square %q", s)
	}
	rank := int(rest[0] - '1')
	if mover == Black {
		rank = 7 - rank
	}
	return sq(file, rank), nil
}

// ParseMove decodes descriptive input such as "p/k2-k3" (the piece letter
// is advisory; the squares decide) for the given mover.
func ParseMove(input string, mover Color) (Move, error) {
	text := strings.TrimSpace(strings.ToLower(input))
	if idx := strings.IndexByte(text, '/'); idx >= 0 {
		text = text[idx+1:]
	}
	parts := strings.SplitN(text, "-", 2)
	if len(parts) != 2 {
		return Move{}, fmt.Errorf("bad move %q: want piece/from-to", input)
	}
	from, err := parseSquare(parts[0], mover)
	if err != nil {
		return Move{}, err
	}
	to, err := parseSquare(parts[1], mover)
	if err != nil {
		return Move{}, err
	}
	return Move{From: from, To: to}, nil
}
