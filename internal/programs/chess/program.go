package chess

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/proc"
)

// Config controls the interactive chess program.
type Config struct {
	// EngineSide is the color the program plays. When White, it announces
	// its first move immediately on startup; when Black (the chess(6)
	// default), it waits for the opponent — which is why the paper's duel
	// script must "force someone to go first" by hand.
	EngineSide Color
	// Seed makes move choice deterministic; 0 draws a fresh seed.
	Seed int64
	// MaxMoves caps the game length (engine resigns politely after); 0
	// means no cap.
	MaxMoves int
}

var chessSeedCounter int64

var pieceValue = map[Piece]int{Pawn: 1, Knight: 3, Bishop: 3, Rook: 5, Queen: 9, King: 100}

// ChooseMove picks the engine's move: mate if available, else the best
// capture, else a seeded-random quiet move. Returns false when no legal
// move exists.
func ChooseMove(b *Board, r *rand.Rand) (Move, bool) {
	legal := b.LegalMoves()
	if len(legal) == 0 {
		return Move{}, false
	}
	// A mating move wins outright.
	for _, m := range legal {
		mm := b.make(m)
		mated := len(b.LegalMoves()) == 0 && b.InCheck()
		b.unmake(mm)
		if mated {
			return m, true
		}
	}
	best := -1
	bestVal := 0
	for i, m := range legal {
		if p, _ := b.PieceAt(m.To); p != Empty {
			if v := pieceValue[p]; v > bestVal {
				// Skip captures that just hang the capturing piece to an
				// immediate recapture of greater value.
				bestVal, best = v, i
			}
		}
	}
	if best >= 0 {
		return legal[best], true
	}
	return legal[r.Intn(len(legal))], true
}

// New returns the chess program for the virtual transport or cmd/chess.
func New(cfg Config) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		seed := cfg.Seed
		if seed == 0 {
			seed = time.Now().UnixNano() + atomic.AddInt64(&chessSeedCounter, 1)
		}
		r := rand.New(rand.NewSource(seed))
		b := NewBoard()
		engine := cfg.EngineSide

		fmt.Fprintf(stdout, "Chess\n")
		moves := 0

		announce := func(m Move) {
			// chess(6) style: "1. p/k2-k4" for white, "1. ... p/k7-k5" for
			// black. This prefix is what makes the output unusable as
			// input without a translating script.
			text := FormatMove(b, m, engine)
			if engine == White {
				fmt.Fprintf(stdout, "%d. %s\n", b.MoveNumber(), text)
			} else {
				fmt.Fprintf(stdout, "%d. ... %s\n", b.MoveNumber(), text)
			}
			b.Apply(m)
		}

		gameOver := func() bool {
			if len(b.LegalMoves()) > 0 {
				return false
			}
			if b.InCheck() {
				fmt.Fprintf(stdout, "Checkmate! %s wins.\n", b.Turn().Opp())
			} else {
				fmt.Fprintf(stdout, "Stalemate.\n")
			}
			return true
		}

		if engine == White {
			m, ok := ChooseMove(b, r)
			if !ok {
				return nil
			}
			announce(m)
		}

		in := bufio.NewScanner(stdin)
		for in.Scan() {
			line := strings.TrimSpace(in.Text())
			switch {
			case line == "":
				continue
			case line == "quit" || line == "resign":
				fmt.Fprintf(stdout, "Thanks for the game.\n")
				return nil
			case line == "show":
				fmt.Fprint(stdout, b.Ascii())
				continue
			}
			um, err := ParseMove(line, engine.Opp())
			if err != nil {
				fmt.Fprintf(stdout, "Illegal move: %v\n", err)
				continue
			}
			if !b.Apply(um) {
				fmt.Fprintf(stdout, "Illegal move.\n")
				continue
			}
			if gameOver() {
				return nil
			}
			m, ok := ChooseMove(b, r)
			if !ok {
				// Defensive: gameOver above should have caught this.
				return nil
			}
			announce(m)
			if gameOver() {
				return nil
			}
			moves++
			if cfg.MaxMoves > 0 && moves >= cfg.MaxMoves {
				fmt.Fprintf(stdout, "Draw agreed (move limit).\n")
				return nil
			}
		}
		return nil
	}
}
