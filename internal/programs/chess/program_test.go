package chess

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func spawnChess(t *testing.T, cfg Config) *core.Session {
	t.Helper()
	s, err := core.SpawnProgram(&core.Config{MatchMax: 1 << 14}, "chess", New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestProgramResponderFlow(t *testing.T) {
	s := spawnChess(t, Config{EngineSide: Black, Seed: 5})
	if _, err := s.ExpectTimeout(2*time.Second, core.Regexp("Chess\n")); err != nil {
		t.Fatalf("banner: %v", err)
	}
	// The paper's kickoff.
	s.Send("p/k2-k3\n")
	r, err := s.ExpectTimeout(2*time.Second, core.Regexp(`1\. \.\.\. [pnbrqk]/[a-z0-9]+-[a-z0-9]+`))
	if err != nil {
		t.Fatalf("no black reply: %v", err)
	}
	if !strings.Contains(r.Text, "...") {
		t.Errorf("reply lacks the '...' black marker: %q", r.Text)
	}
}

func TestProgramWhiteOpensImmediately(t *testing.T) {
	s := spawnChess(t, Config{EngineSide: White, Seed: 5})
	if _, err := s.ExpectTimeout(2*time.Second,
		core.Regexp(`1\. [pnbrqk]/[a-z0-9]+-[a-z0-9]+`)); err != nil {
		t.Fatalf("white engine did not open: %v", err)
	}
}

func TestProgramIllegalMoveRejected(t *testing.T) {
	s := spawnChess(t, Config{EngineSide: Black, Seed: 5})
	s.ExpectTimeout(2*time.Second, core.Regexp("Chess\n"))
	s.Send("p/k2-k5\n") // three squares: illegal
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Illegal move*")); err != nil {
		t.Fatalf("no rejection: %v", err)
	}
	// Garbage notation is rejected too, with the game still alive.
	s.Send("xyzzy\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Illegal move*")); err != nil {
		t.Fatalf("no rejection of garbage: %v", err)
	}
	s.Send("p/k2-k4\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*...*")); err != nil {
		t.Fatalf("game dead after rejections: %v", err)
	}
}

func TestProgramShowCommand(t *testing.T) {
	s := spawnChess(t, Config{EngineSide: Black, Seed: 5})
	s.ExpectTimeout(2*time.Second, core.Regexp("Chess\n"))
	s.Send("show\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*a b c d e f g h*")); err != nil {
		t.Fatalf("no board: %v", err)
	}
}

func TestProgramResign(t *testing.T) {
	s := spawnChess(t, Config{EngineSide: Black, Seed: 5})
	s.ExpectTimeout(2*time.Second, core.Regexp("Chess\n"))
	s.Send("resign\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Thanks for the game*")); err != nil {
		t.Fatalf("no farewell: %v", err)
	}
	if code, _ := s.Wait(); code != 0 {
		t.Errorf("exit %d", code)
	}
}

// TestFullDuelToCompletion wires a white engine to a black engine through
// the library and plays until a terminal message — the §2.2 scenario run
// to its end. MaxMoves bounds white so the test always terminates.
func TestFullDuelToCompletion(t *testing.T) {
	white := spawnChess(t, Config{EngineSide: White, Seed: 11, MaxMoves: 30})
	black := spawnChess(t, Config{EngineSide: Black, Seed: 22})
	white.Expect(core.Regexp("Chess\n"))
	black.Expect(core.Regexp("Chess\n"))

	moveRe := core.Regexp(`\d+\. (\.\.\. )?[pnbrqk]/[a-z0-9]+-[a-z0-9]+`)
	terminal := func(text string) bool {
		return strings.Contains(text, "Checkmate") || strings.Contains(text, "Stalemate") ||
			strings.Contains(text, "Draw")
	}
	read := func(s *core.Session) (string, bool) {
		r, err := s.ExpectTimeout(5*time.Second, moveRe,
			core.Glob("*Checkmate*"), core.Glob("*Stalemate*"), core.Glob("*Draw*"),
			core.EOFCase())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if r.Index != 0 || terminal(r.Text) {
			return r.Text, false
		}
		// Extract the bare move.
		fields := strings.Fields(r.Text)
		return fields[len(fields)-1], true
	}
	msg, ok := read(white)
	plies := 0
	for ok && plies < 200 {
		target := black
		if plies%2 == 1 {
			target = white
		}
		target.Send(msg + "\n")
		msg, ok = read(target)
		plies++
	}
	if plies == 0 {
		t.Fatal("no moves exchanged")
	}
	if ok {
		t.Fatalf("game never terminated after %d plies", plies)
	}
}

func TestParseMoveErrors(t *testing.T) {
	for _, bad := range []string{"", "nodash", "p/z9-k2", "p/k2-z9", "p/k0-k1", "p/k9-k1", "k2k3"} {
		if _, err := ParseMove(bad, White); err == nil {
			t.Errorf("ParseMove(%q) accepted garbage", bad)
		}
	}
	// Algebraic files are accepted as a convenience.
	m, err := ParseMove("p/e2-e4", White)
	if err != nil {
		t.Fatalf("algebraic: %v", err)
	}
	if m.From != sq(4, 1) || m.To != sq(4, 3) {
		t.Errorf("algebraic squares wrong: %d->%d", m.From, m.To)
	}
}

func TestPromotionAutoQueens(t *testing.T) {
	b := &Board{turn: White, moveNo: 1}
	b.cells[sq(0, 6)] = square{Pawn, White} // a7
	b.cells[sq(4, 0)] = square{King, White} // e1
	b.cells[sq(4, 7)] = square{King, Black} // e8
	if !b.Apply(Move{From: sq(0, 6), To: sq(0, 7)}) {
		t.Fatal("promotion move rejected")
	}
	if p, c := b.PieceAt(sq(0, 7)); p != Queen || c != White {
		t.Errorf("a8 = %v/%v, want white queen", p, c)
	}
}

func TestCheckDetection(t *testing.T) {
	b := &Board{turn: Black, moveNo: 1}
	b.cells[sq(4, 0)] = square{King, White}
	b.cells[sq(4, 7)] = square{King, Black}
	b.cells[sq(4, 5)] = square{Rook, White} // e6: checks e8
	if !b.InCheck() {
		t.Error("black not reported in check from rook on the file")
	}
	// Every legal black move must leave the king safe.
	for _, m := range b.LegalMoves() {
		mm := b.make(m)
		k := b.kingSquare(Black)
		if b.attacked(k, White) {
			t.Errorf("legal move %d->%d leaves king attacked", m.From, m.To)
		}
		b.unmake(mm)
	}
}

func TestStalemateDetected(t *testing.T) {
	// Classic stalemate: black king a8, white queen c7, white king c6 —
	// wait, that's mate-adjacent; use the standard Kb6/Qc7 vs Ka8 pattern
	// with black to move: king a8, white queen b6 guarded... Use the
	// textbook: black Ka8; white Kb6, Qc8?? that's mate. Simplest known
	// stalemate: black Ka8, white Qb6, white Kc7 — wait Qb6 attacks a7,b7,b8? b8 yes.
	// Verified pattern: black Kh8, white Kf7, white Qg6: h8 attacked? g7,g8,h7 by Q/K: g8 (Q via g-file), h7 (Qg6), g7 (K+Q). Kh8 not in check, no moves.
	b := &Board{turn: Black, moveNo: 1}
	b.cells[sq(7, 7)] = square{King, Black}  // h8
	b.cells[sq(5, 6)] = square{King, White}  // f7
	b.cells[sq(6, 5)] = square{Queen, White} // g6
	if b.InCheck() {
		t.Fatal("position should not be check")
	}
	if got := len(b.LegalMoves()); got != 0 {
		t.Errorf("stalemate position has %d legal moves", got)
	}
}
