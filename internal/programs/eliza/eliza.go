// Package eliza implements Weizenbaum's 1966 pattern-matching psychotherapist,
// one of the paper's examples of "multiple programs never designed to work
// together" (§5.8): expect can wire two Elizas to each other even though
// each was written to talk only to a human. The implementation follows the
// classic keyword / decomposition / reassembly design with pronoun
// reflection and ranked keywords.
package eliza

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/proc"
)

// rule is one keyword with its decomposition/reassembly table.
type rule struct {
	keyword string
	rank    int
	decomps []decomp
}

type decomp struct {
	pattern    []string // tokens; "*" matches any (possibly empty) run
	reassembly []string // "$n" substitutes the n-th wildcard capture (1-based)
}

var reflections = map[string]string{
	"am": "are", "was": "were", "i": "you", "i'd": "you would",
	"i've": "you have", "i'll": "you will", "my": "your", "are": "am",
	"you've": "I have", "you'll": "I will", "your": "my", "yours": "mine",
	"you": "me", "me": "you", "myself": "yourself", "yourself": "myself",
}

var rules = []rule{
	{"sorry", 0, []decomp{{pat("*"), []string{
		"PLEASE DON'T APOLOGIZE.",
		"APOLOGIES ARE NOT NECESSARY.",
		"WHAT FEELINGS DO YOU HAVE WHEN YOU APOLOGIZE?",
	}}}},
	{"remember", 5, []decomp{
		{pat("* i remember *"), []string{
			"DO YOU OFTEN THINK OF $2?",
			"DOES THINKING OF $2 BRING ANYTHING ELSE TO MIND?",
			"WHY DO YOU REMEMBER $2 JUST NOW?",
		}},
		{pat("* do you remember *"), []string{
			"DID YOU THINK I WOULD FORGET $2?",
			"WHAT ABOUT $2?",
		}},
		{pat("*"), []string{"WHY DO YOU BRING UP MEMORIES NOW?"}},
	}},
	{"dream", 3, []decomp{{pat("*"), []string{
		"WHAT DOES THAT DREAM SUGGEST TO YOU?",
		"DO YOU DREAM OFTEN?",
		"DON'T YOU BELIEVE THAT DREAM HAS SOMETHING TO DO WITH YOUR PROBLEM?",
	}}}},
	{"mother", 4, []decomp{{pat("*"), []string{
		"TELL ME MORE ABOUT YOUR FAMILY.",
		"WHO ELSE IN YOUR FAMILY COMES TO MIND?",
	}}}},
	{"father", 4, []decomp{{pat("*"), []string{
		"TELL ME MORE ABOUT YOUR FAMILY.",
		"HOW DO YOU FEEL ABOUT YOUR FATHER?",
	}}}},
	{"computer", 10, []decomp{{pat("*"), []string{
		"DO COMPUTERS WORRY YOU?",
		"WHY DO YOU MENTION COMPUTERS?",
		"WHAT DO YOU THINK MACHINES HAVE TO DO WITH YOUR PROBLEM?",
	}}}},
	{"machine", 10, []decomp{{pat("*"), []string{
		"DO COMPUTERS WORRY YOU?",
		"WHY DO YOU MENTION COMPUTERS?",
	}}}},
	{"name", 15, []decomp{{pat("*"), []string{
		"I AM NOT INTERESTED IN NAMES.",
	}}}},
	{"always", 1, []decomp{{pat("*"), []string{
		"CAN YOU THINK OF A SPECIFIC EXAMPLE?",
		"WHEN?",
		"REALLY, ALWAYS?",
	}}}},
	{"because", 0, []decomp{{pat("*"), []string{
		"IS THAT THE REAL REASON?",
		"DON'T ANY OTHER REASONS COME TO MIND?",
		"DOES THAT REASON SEEM TO EXPLAIN ANYTHING ELSE?",
	}}}},
	{"yes", 0, []decomp{{pat("*"), []string{
		"YOU SEEM QUITE POSITIVE.",
		"YOU ARE SURE.",
		"I SEE.",
		"I UNDERSTAND.",
	}}}},
	{"no", 0, []decomp{{pat("*"), []string{
		"ARE YOU SAYING NO JUST TO BE NEGATIVE?",
		"YOU ARE BEING A BIT NEGATIVE.",
		"WHY NOT?",
	}}}},
	{"hello", 0, []decomp{{pat("*"), []string{
		"HOW DO YOU DO. PLEASE STATE YOUR PROBLEM.",
	}}}},
	{"i am", 6, []decomp{
		{pat("* i am *"), []string{
			"IS IT BECAUSE YOU ARE $2 THAT YOU CAME TO ME?",
			"HOW LONG HAVE YOU BEEN $2?",
			"DO YOU BELIEVE IT IS NORMAL TO BE $2?",
			"DO YOU ENJOY BEING $2?",
		}},
	}},
	{"i want", 6, []decomp{
		{pat("* i want *"), []string{
			"WHAT WOULD IT MEAN TO YOU IF YOU GOT $2?",
			"WHY DO YOU WANT $2?",
			"SUPPOSE YOU GOT $2 SOON.",
		}},
	}},
	{"i feel", 6, []decomp{
		{pat("* i feel *"), []string{
			"TELL ME MORE ABOUT SUCH FEELINGS.",
			"DO YOU OFTEN FEEL $2?",
			"DO YOU ENJOY FEELING $2?",
		}},
	}},
	{"i think", 5, []decomp{
		{pat("* i think *"), []string{
			"DO YOU REALLY THINK SO?",
			"BUT YOU ARE NOT SURE $2?",
			"DO YOU DOUBT $2?",
		}},
	}},
	{"you are", 7, []decomp{
		{pat("* you are *"), []string{
			"WHAT MAKES YOU THINK I AM $2?",
			"DOES IT PLEASE YOU TO BELIEVE I AM $2?",
			"PERHAPS YOU WOULD LIKE TO BE $2.",
		}},
	}},
	{"you", 2, []decomp{
		{pat("* you *"), []string{
			"WE WERE DISCUSSING YOU - NOT ME.",
			"OH, I $2?",
			"YOU'RE NOT REALLY TALKING ABOUT ME, ARE YOU?",
		}},
	}},
	{"why", 1, []decomp{
		{pat("* why don't you *"), []string{
			"DO YOU BELIEVE I DON'T $2?",
			"PERHAPS I WILL $2 IN GOOD TIME.",
			"SHOULD YOU $2 YOURSELF?",
		}},
		{pat("* why can't i *"), []string{
			"DO YOU THINK YOU SHOULD BE ABLE TO $2?",
			"DO YOU WANT TO BE ABLE TO $2?",
		}},
		{pat("*"), []string{"WHY DO YOU ASK?"}},
	}},
	{"my", 2, []decomp{
		{pat("* my *"), []string{
			"YOUR $2?",
			"WHY DO YOU SAY YOUR $2?",
			"DOES THAT SUGGEST ANYTHING ELSE WHICH BELONGS TO YOU?",
			"IS IT IMPORTANT TO YOU THAT YOUR $2?",
		}},
	}},
	{"can", 1, []decomp{
		{pat("* can you *"), []string{
			"YOU BELIEVE I CAN $2, DON'T YOU?",
			"YOU WANT ME TO BE ABLE TO $2.",
		}},
		{pat("* can i *"), []string{
			"WHETHER OR NOT YOU CAN $2 DEPENDS ON YOU MORE THAN ON ME.",
			"DO YOU WANT TO BE ABLE TO $2?",
		}},
	}},
	{"what", 0, []decomp{{pat("*"), []string{
		"WHY DO YOU ASK?",
		"DOES THAT QUESTION INTEREST YOU?",
		"WHAT IS IT YOU REALLY WANT TO KNOW?",
	}}}},
	{"everybody", 2, []decomp{{pat("*"), []string{
		"SURELY NOT EVERYBODY.",
		"CAN YOU THINK OF ANYONE IN PARTICULAR?",
		"WHO, FOR EXAMPLE?",
	}}}},
	{"nobody", 2, []decomp{{pat("*"), []string{
		"SURELY NOT NOBODY.",
		"WHO, FOR EXAMPLE?",
	}}}},
}

var defaultResponses = []string{
	"I AM NOT SURE I UNDERSTAND YOU FULLY.",
	"PLEASE GO ON.",
	"WHAT DOES THAT SUGGEST TO YOU?",
	"DO YOU FEEL STRONGLY ABOUT DISCUSSING SUCH THINGS?",
	"TELL ME MORE ABOUT THAT.",
}

// Greeting is the classic opening line.
const Greeting = "HOW DO YOU DO. PLEASE TELL ME YOUR PROBLEM."

func pat(s string) []string { return strings.Fields(s) }

// Engine is a stateful Eliza conversation.
type Engine struct {
	r        *rand.Rand
	useCount map[string]int
}

var elizaSeedCounter int64

// NewEngine creates a conversation; seed 0 draws a fresh seed.
func NewEngine(seed int64) *Engine {
	if seed == 0 {
		seed = time.Now().UnixNano() + atomic.AddInt64(&elizaSeedCounter, 1)
	}
	return &Engine{
		r:        rand.New(rand.NewSource(seed)),
		useCount: make(map[string]int),
	}
}

// tokenize lowercases and strips punctuation into words.
func tokenize(s string) []string {
	s = strings.ToLower(s)
	var sb strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '\'':
			sb.WriteRune(c)
		default:
			sb.WriteByte(' ')
		}
	}
	return strings.Fields(sb.String())
}

// reflect swaps first/second person in a captured phrase.
func reflect(words []string) string {
	out := make([]string, len(words))
	for i, w := range words {
		if r, ok := reflections[w]; ok {
			out[i] = r
		} else {
			out[i] = w
		}
	}
	return strings.Join(out, " ")
}

// matchDecomp matches tokens against a decomposition pattern, returning
// the wildcard captures.
func matchDecomp(pattern, tokens []string) ([][]string, bool) {
	var captures [][]string
	var walk func(pi, ti int) bool
	walk = func(pi, ti int) bool {
		if pi == len(pattern) {
			return ti == len(tokens)
		}
		if pattern[pi] == "*" {
			// Try all split points, shortest first.
			for k := ti; k <= len(tokens); k++ {
				captures = append(captures, tokens[ti:k])
				if walk(pi+1, k) {
					return true
				}
				captures = captures[:len(captures)-1]
			}
			return false
		}
		if ti < len(tokens) && tokens[ti] == pattern[pi] {
			return walk(pi+1, ti+1)
		}
		return false
	}
	if walk(0, 0) {
		return captures, true
	}
	return nil, false
}

// Respond produces Eliza's reply to one line of input.
func (e *Engine) Respond(input string) string {
	tokens := tokenize(input)
	if len(tokens) == 0 {
		return "I CAN'T HELP YOU IF YOU WILL NOT CHAT WITH ME."
	}
	joined := " " + strings.Join(tokens, " ") + " "

	// Find the highest-ranked keyword present.
	bestIdx := -1
	bestRank := -1
	for i, rl := range rules {
		// A keyword matches as a whole word or its plain plural
		// ("computer" also fires on "computers").
		if (strings.Contains(joined, " "+rl.keyword+" ") ||
			strings.Contains(joined, " "+rl.keyword+"s ")) && rl.rank > bestRank {
			bestIdx, bestRank = i, rl.rank
		}
	}
	if bestIdx >= 0 {
		rl := rules[bestIdx]
		for _, d := range rl.decomps {
			caps, ok := matchDecomp(d.pattern, tokens)
			if !ok {
				continue
			}
			// Cycle through reassemblies so repetition varies.
			e.useCount[rl.keyword]++
			tpl := d.reassembly[(e.useCount[rl.keyword]-1)%len(d.reassembly)]
			return expand(tpl, caps)
		}
	}
	return defaultResponses[e.r.Intn(len(defaultResponses))]
}

// expand substitutes $n capture references in a reassembly template.
func expand(tpl string, caps [][]string) string {
	var sb strings.Builder
	for i := 0; i < len(tpl); i++ {
		if tpl[i] == '$' && i+1 < len(tpl) && tpl[i+1] >= '1' && tpl[i+1] <= '9' {
			n := int(tpl[i+1] - '1')
			if n < len(caps) {
				sb.WriteString(strings.ToUpper(reflect(caps[n])))
			}
			i++
			continue
		}
		sb.WriteByte(tpl[i])
	}
	return sb.String()
}

// Config controls the interactive program wrapper.
type Config struct {
	Seed int64
	// Prompt, when true, prints "> " before each read (off for
	// program-to-program wiring).
	Prompt bool
}

// New returns Eliza as a spawnable program.
func New(cfg Config) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		e := NewEngine(cfg.Seed)
		fmt.Fprintln(stdout, Greeting)
		sc := bufio.NewScanner(stdin)
		for {
			if cfg.Prompt {
				fmt.Fprint(stdout, "> ")
			}
			if !sc.Scan() {
				return nil
			}
			line := strings.TrimSpace(sc.Text())
			if strings.EqualFold(line, "goodbye") || strings.EqualFold(line, "quit") {
				fmt.Fprintln(stdout, "GOODBYE. IT WAS NICE TALKING TO YOU.")
				return nil
			}
			fmt.Fprintln(stdout, e.Respond(line))
		}
	}
}
