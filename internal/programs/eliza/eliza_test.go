package eliza

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestKeywordResponses(t *testing.T) {
	e := NewEngine(1)
	cases := []struct{ in, wantSub string }{
		{"I am very unhappy", "YOU ARE VERY UNHAPPY"},
		{"computers frighten me", "COMPUTER"},
		{"well my mother hates me", "FAMILY"},
		{"i remember the war", "THE WAR"},
		{"because i said so", "REAL REASON"},
	}
	for _, tc := range cases {
		got := e.Respond(tc.in)
		if !strings.Contains(strings.ToUpper(got), tc.wantSub) {
			t.Errorf("Respond(%q) = %q, want substring %q", tc.in, got, tc.wantSub)
		}
	}
}

func TestReflection(t *testing.T) {
	e := NewEngine(1)
	got := e.Respond("i am afraid of my boss")
	// "i am X" reflects the capture: "my boss" → "your boss".
	if !strings.Contains(strings.ToUpper(got), "AFRAID OF YOUR BOSS") {
		t.Errorf("reflection failed: %q", got)
	}
}

func TestRankedKeywordPreferred(t *testing.T) {
	e := NewEngine(1)
	// "computer" (rank 10) must beat "because" (rank 0).
	got := e.Respond("because the computer said so")
	if !strings.Contains(got, "COMPUTER") && !strings.Contains(got, "MACHINE") {
		t.Errorf("high-rank keyword lost: %q", got)
	}
}

func TestEmptyInput(t *testing.T) {
	e := NewEngine(1)
	if got := e.Respond("   "); !strings.Contains(got, "CHAT") {
		t.Errorf("empty input response: %q", got)
	}
}

func TestResponsesCycle(t *testing.T) {
	e := NewEngine(1)
	a := e.Respond("i dream of electric sheep")
	b := e.Respond("i dream of electric sheep")
	if a == b {
		t.Errorf("repeated input gave identical response %q — reassembly should cycle", a)
	}
}

func TestMatchDecomp(t *testing.T) {
	caps, ok := matchDecomp(pat("* i am *"), tokenize("well i am sad today"))
	if !ok {
		t.Fatal("decomposition failed")
	}
	if got := strings.Join(caps[1], " "); got != "sad today" {
		t.Errorf("second capture = %q", got)
	}
	if _, ok := matchDecomp(pat("* i am *"), tokenize("you are sad")); ok {
		t.Error("matched pattern that should not")
	}
}

func TestProgramDialogue(t *testing.T) {
	s, err := core.SpawnProgram(nil, "eliza", New(Config{Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*PLEASE TELL ME YOUR PROBLEM*")); err != nil {
		t.Fatalf("no greeting: %v", err)
	}
	s.Send("i am lonely\n")
	r, err := s.ExpectTimeout(2*time.Second, core.Glob("*LONELY*"))
	if err != nil {
		t.Fatalf("no response: %v", err)
	}
	_ = r
	s.Send("goodbye\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*GOODBYE*")); err != nil {
		t.Fatalf("no farewell: %v", err)
	}
}

// TestElizaDuet wires two Elizas to each other through the engine — §5.8's
// example of connecting programs never designed to talk to one another.
func TestElizaDuet(t *testing.T) {
	a, err := core.SpawnProgram(nil, "eliza-a", New(Config{Seed: 10}))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := core.SpawnProgram(nil, "eliza-b", New(Config{Seed: 20}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	readLine := func(s *core.Session) string {
		r, err := s.ExpectTimeout(2*time.Second, core.Regexp(`[^\n]+\n`))
		if err != nil {
			t.Fatalf("%s went quiet: %v", s.Name(), err)
		}
		lines := strings.Split(strings.TrimSpace(r.Text), "\n")
		return strings.TrimSpace(lines[len(lines)-1])
	}

	// Swallow both greetings, then relay 6 turns.
	first := readLine(a)
	readLine(b)
	msg := first
	for turn := 0; turn < 6; turn++ {
		target := b
		if turn%2 == 1 {
			target = a
		}
		if err := target.Send(msg + "\n"); err != nil {
			t.Fatal(err)
		}
		msg = readLine(target)
		if msg == "" {
			t.Fatalf("turn %d produced empty message", turn)
		}
	}
}
