// Package fsck simulates the filesystem checker the paper holds up as the
// archetype of an "ostensibly non-interactive program" (§5.6): run
// interactively it asks CLEAR? / ADJUST? / SALVAGE? questions, and its -y
// and -n flags blanket-answer them — "a free license to continue, even
// after severe problems are encountered", as the manual the paper quotes
// puts it. expect can instead answer each question on its merits and hand
// the questionable ones to a human.
//
// The simulator builds a synthetic filesystem image, injects classic
// inconsistencies (duplicate blocks, unreferenced files, bad link counts,
// a corrupt free list), and then runs the five familiar phases over it.
package fsck

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/proc"
)

// Inode is one file slot in the synthetic image.
type Inode struct {
	Used       bool
	Links      int   // link count recorded in the inode
	RealLinks  int   // directory references actually found
	Blocks     []int // block numbers claimed
	Size       int
	Referenced bool // reachable from the root directory
}

// FileSystem is the synthetic image fsck checks and repairs in place.
type FileSystem struct {
	Inodes      []Inode
	TotalBlocks int
	FreeList    []int
	FreeListBad bool
	// DupBlocks maps a block number to the inodes (indices) claiming it,
	// when more than one does.
	DupBlocks map[int][]int
	Modified  bool
}

// Generate builds an image with nFiles consistent files over nBlocks
// blocks, then injects errs inconsistencies drawn deterministically from
// seed. The injected problems rotate through the four classes.
func Generate(seed int64, nFiles, nBlocks, errs int) *FileSystem {
	r := rand.New(rand.NewSource(seed))
	fs := &FileSystem{
		TotalBlocks: nBlocks,
		DupBlocks:   make(map[int][]int),
	}
	next := 0
	for i := 0; i < nFiles; i++ {
		n := 1 + r.Intn(4)
		if next+n > nBlocks {
			break
		}
		ino := Inode{Used: true, Links: 1, RealLinks: 1, Size: n * 512, Referenced: true}
		for k := 0; k < n; k++ {
			ino.Blocks = append(ino.Blocks, next)
			next++
		}
		fs.Inodes = append(fs.Inodes, ino)
	}
	for b := next; b < nBlocks; b++ {
		fs.FreeList = append(fs.FreeList, b)
	}
	for e := 0; e < errs; e++ {
		switch e % 4 {
		case 0: // duplicate block claim
			if len(fs.Inodes) >= 2 {
				a := r.Intn(len(fs.Inodes))
				b := r.Intn(len(fs.Inodes))
				for b == a {
					b = r.Intn(len(fs.Inodes))
				}
				blk := fs.Inodes[a].Blocks[0]
				fs.Inodes[b].Blocks = append(fs.Inodes[b].Blocks, blk)
				fs.DupBlocks[blk] = []int{a, b}
			}
		case 1: // unreferenced file
			if len(fs.Inodes) > 0 {
				i := r.Intn(len(fs.Inodes))
				fs.Inodes[i].Referenced = false
				fs.Inodes[i].RealLinks = 0
			}
		case 2: // wrong link count
			if len(fs.Inodes) > 0 {
				i := r.Intn(len(fs.Inodes))
				if fs.Inodes[i].Referenced {
					fs.Inodes[i].Links = fs.Inodes[i].RealLinks + 1 + r.Intn(2)
				}
			}
		case 3: // corrupt free list
			fs.FreeListBad = true
		}
	}
	return fs
}

// dupBlockOrder returns the multiply-claimed block numbers in ascending
// order. Go randomizes map iteration per run, which made the question
// order — and therefore the checker's transcript — nondeterministic even
// for a seeded image; a real fsck walks blocks in block order.
func (fs *FileSystem) dupBlockOrder() []int {
	blocks := make([]int, 0, len(fs.DupBlocks))
	for blk := range fs.DupBlocks {
		blocks = append(blocks, blk)
	}
	sort.Ints(blocks)
	return blocks
}

// Problems returns a description of every inconsistency still present —
// the test oracle for "did fsck -y actually fix the image".
func (fs *FileSystem) Problems() []string {
	var out []string
	for _, blk := range fs.dupBlockOrder() {
		if owners := fs.DupBlocks[blk]; len(owners) > 1 {
			out = append(out, fmt.Sprintf("block %d multiply claimed", blk))
		}
	}
	for i, ino := range fs.Inodes {
		if !ino.Used {
			continue
		}
		if !ino.Referenced {
			out = append(out, fmt.Sprintf("inode %d unreferenced", i))
		} else if ino.Links != ino.RealLinks {
			out = append(out, fmt.Sprintf("inode %d link count %d should be %d", i, ino.Links, ino.RealLinks))
		}
	}
	if fs.FreeListBad {
		out = append(out, "free list bad")
	}
	return out
}

// Config controls a checker run.
type Config struct {
	// FS is the image to check; required.
	FS *FileSystem
	// AnswerYes / AnswerNo are the -y / -n flags. Both false means
	// interactive questioning.
	AnswerYes, AnswerNo bool
}

// answerer resolves each question: from flags or from the dialogue.
type answerer struct {
	cfg Config
	in  *bufio.Reader
	out io.Writer
}

func (a *answerer) ask(question string) bool {
	fmt.Fprintf(a.out, "%s? ", question)
	switch {
	case a.cfg.AnswerYes:
		fmt.Fprintln(a.out, "yes")
		return true
	case a.cfg.AnswerNo:
		fmt.Fprintln(a.out, "no")
		return false
	}
	for {
		// Accept \r-terminated answers: a controller on the other side of
		// a raw channel sends carriage returns, with no tty to translate.
		line, err := readAnswerLine(a.in)
		ans := strings.ToLower(strings.TrimSpace(line))
		switch {
		case strings.HasPrefix(ans, "y"):
			return true
		case strings.HasPrefix(ans, "n"):
			return false
		}
		if err != nil {
			return false // EOF: be conservative
		}
		fmt.Fprintf(a.out, "Please answer yes or no: ")
	}
}

// readAnswerLine reads through the next \n or \r.
func readAnswerLine(in *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		c, err := in.ReadByte()
		if err != nil {
			return sb.String(), err
		}
		if c == '\n' || c == '\r' {
			return sb.String(), nil
		}
		sb.WriteByte(c)
	}
}

// New returns the checker as a spawnable program. It mutates cfg.FS.
func New(cfg Config) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		fs := cfg.FS
		if fs == nil {
			fmt.Fprintln(stdout, "fsck: no filesystem")
			return fmt.Errorf("fsck: no filesystem")
		}
		a := &answerer{cfg: cfg, in: bufio.NewReader(stdin), out: stdout}

		fmt.Fprintln(stdout, "/dev/rxd0a")
		fmt.Fprintln(stdout, "** Phase 1 - Check Blocks and Sizes")
		for _, blk := range fs.dupBlockOrder() {
			owners := fs.DupBlocks[blk]
			if len(owners) < 2 {
				continue
			}
			// The second claimant loses its copy if the operator agrees.
			loser := owners[1]
			fmt.Fprintf(stdout, "%d DUP I=%d\n", blk, loser+1)
			if a.ask("CLEAR") {
				kept := fs.Inodes[loser].Blocks[:0]
				for _, b := range fs.Inodes[loser].Blocks {
					if b != blk {
						kept = append(kept, b)
					}
				}
				fs.Inodes[loser].Blocks = kept
				fs.DupBlocks[blk] = owners[:1]
				fs.Modified = true
			}
		}

		fmt.Fprintln(stdout, "** Phase 2 - Check Pathnames")
		fmt.Fprintln(stdout, "** Phase 3 - Check Connectivity")

		fmt.Fprintln(stdout, "** Phase 4 - Check Reference Counts")
		for i := range fs.Inodes {
			ino := &fs.Inodes[i]
			if !ino.Used {
				continue
			}
			if !ino.Referenced {
				fmt.Fprintf(stdout, "UNREF FILE I=%d  OWNER=root MODE=100644\nSIZE=%d MTIME=Jun  5 12:00 1990\n",
					i+1, ino.Size)
				if a.ask("RECONNECT") {
					ino.Referenced = true
					ino.RealLinks = 1
					ino.Links = 1
					fs.Modified = true
				} else if a.ask("CLEAR") {
					*ino = Inode{}
					fs.Modified = true
				}
				continue
			}
			if ino.Links != ino.RealLinks {
				fmt.Fprintf(stdout, "LINK COUNT FILE I=%d  COUNT %d SHOULD BE %d\n",
					i+1, ino.Links, ino.RealLinks)
				if a.ask("ADJUST") {
					ino.Links = ino.RealLinks
					fs.Modified = true
				}
			}
		}

		fmt.Fprintln(stdout, "** Phase 5 - Check Free List")
		if fs.FreeListBad {
			fmt.Fprintln(stdout, "BAD FREE LIST")
			if a.ask("SALVAGE") {
				fs.FreeListBad = false
				fs.Modified = true
			}
		}

		files, used := 0, 0
		for _, ino := range fs.Inodes {
			if ino.Used {
				files++
				used += len(ino.Blocks)
			}
		}
		fmt.Fprintf(stdout, "%d files, %d used, %d free\n", files, used, fs.TotalBlocks-used)
		if fs.Modified {
			fmt.Fprintln(stdout, "***** FILE SYSTEM WAS MODIFIED *****")
		}
		return nil
	}
}
