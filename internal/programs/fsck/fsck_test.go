package fsck

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestGenerateInjectsProblems(t *testing.T) {
	fs := Generate(1, 20, 100, 4)
	probs := fs.Problems()
	if len(probs) == 0 {
		t.Fatal("generator injected no problems")
	}
	clean := Generate(1, 20, 100, 0)
	if got := clean.Problems(); len(got) != 0 {
		t.Fatalf("error-free image reports problems: %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 20, 100, 4).Problems()
	b := Generate(7, 20, 100, 4).Problems()
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Errorf("same seed, different problems: %v vs %v", a, b)
	}
}

func runFsck(t *testing.T, cfg Config, drive func(s *core.Session)) string {
	t.Helper()
	s, err := core.SpawnProgram(&core.Config{MatchMax: 1 << 16}, "fsck", New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if drive != nil {
		drive(s)
	}
	var out strings.Builder
	for {
		r, err := s.ExpectTimeout(5*time.Second, core.Regexp(`(?s).+`), core.EOFCase())
		if r != nil {
			out.WriteString(r.Text)
		}
		if err != nil || r.Eof {
			break
		}
	}
	s.Wait()
	return out.String()
}

func TestAnswerYesFixesEverything(t *testing.T) {
	fs := Generate(3, 20, 100, 6)
	if len(fs.Problems()) == 0 {
		t.Fatal("no problems to fix")
	}
	out := runFsck(t, Config{FS: fs, AnswerYes: true}, nil)
	if !strings.Contains(out, "** Phase 1") || !strings.Contains(out, "** Phase 5") {
		t.Errorf("phases missing from output:\n%s", out)
	}
	if !strings.Contains(out, "FILE SYSTEM WAS MODIFIED") {
		t.Errorf("no modification banner:\n%s", out)
	}
	if probs := fs.Problems(); len(probs) != 0 {
		t.Errorf("fsck -y left problems: %v", probs)
	}
}

func TestAnswerNoFixesNothing(t *testing.T) {
	fs := Generate(3, 20, 100, 6)
	before := len(fs.Problems())
	out := runFsck(t, Config{FS: fs, AnswerNo: true}, nil)
	// UNREF handling may CLEAR?-decline too; nothing should change.
	if after := len(fs.Problems()); after != before {
		t.Errorf("fsck -n changed the image: %d -> %d problems", before, after)
	}
	if strings.Contains(out, "FILE SYSTEM WAS MODIFIED") {
		t.Errorf("-n run claims modification:\n%s", out)
	}
}

// TestInteractiveSelectiveAnswers is the paper's §5.6 scenario: answer yes
// to the routine questions and no to the scary one, which neither -y nor
// -n can express.
func TestInteractiveSelectiveAnswers(t *testing.T) {
	fs := Generate(3, 20, 100, 6)
	s, err := core.SpawnProgram(&core.Config{MatchMax: 1 << 16}, "fsck", New(Config{FS: fs}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sawClear := false
	for {
		r, err := s.ExpectTimeout(5*time.Second,
			core.Exact("CLEAR? "),
			core.Exact("RECONNECT? "),
			core.Exact("ADJUST? "),
			core.Exact("SALVAGE? "),
			core.EOFCase(),
		)
		if err != nil {
			t.Fatalf("dialogue broke: %v", err)
		}
		if r.Eof {
			break
		}
		switch r.Index {
		case 0: // CLEAR: the scary one — decline
			sawClear = true
			s.Send("no\n")
		default:
			s.Send("yes\n")
		}
	}
	if !sawClear {
		t.Skip("this seed produced no CLEAR question")
	}
	// The duplicate block must remain (we declined), everything else fixed.
	remaining := fs.Problems()
	for _, p := range remaining {
		if !strings.Contains(p, "multiply claimed") {
			t.Errorf("selective run left unexpected problem: %v", p)
		}
	}
	if len(remaining) == 0 {
		t.Error("declined CLEAR but duplicate block vanished")
	}
}

func TestInteractiveBadAnswerReprompts(t *testing.T) {
	fs := Generate(5, 10, 50, 1) // one dup-block problem
	s, err := core.SpawnProgram(&core.Config{MatchMax: 1 << 16}, "fsck", New(Config{FS: fs}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ExpectTimeout(5*time.Second, core.Exact("CLEAR? ")); err != nil {
		t.Skipf("no CLEAR question for this seed: %v", err)
	}
	s.Send("maybe\n")
	if _, err := s.ExpectTimeout(5*time.Second, core.Glob("*yes or no*")); err != nil {
		t.Fatalf("no reprompt after bad answer: %v", err)
	}
	s.Send("y\n")
	if _, err := s.ExpectTimeout(5*time.Second, core.Glob("*files,*"), core.EOFCase()); err != nil {
		t.Fatalf("run did not finish: %v", err)
	}
}

func TestSummaryLine(t *testing.T) {
	fs := Generate(2, 15, 80, 0)
	out := runFsck(t, Config{FS: fs, AnswerYes: true}, nil)
	if !strings.Contains(out, "files,") || !strings.Contains(out, "free") {
		t.Errorf("summary line missing:\n%s", out)
	}
	if strings.Contains(out, "MODIFIED") {
		t.Errorf("clean image claims modification:\n%s", out)
	}
}
