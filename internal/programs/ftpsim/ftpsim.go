// Package ftpsim simulates the ftp(1) client of §5.6: "ftp has an option
// that disables interactive prompting so that it can be run from a
// script. But it provides no way to take alternative action should an
// error occur." The simulator exposes exactly that interface: an
// interactive command loop (open/ls/get/mget/prompt/bye) over a virtual
// remote file store with injectable transfer failures, and the -i
// behaviour (Interactive=false) that mget's per-file questioning turns
// off — blindly, which is the paper's complaint.
package ftpsim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/proc"
)

// File is one remote file.
type File struct {
	Name string
	Size int
	// Broken makes every transfer of this file fail mid-way, the error
	// the -i mode has "no way to take alternative action" on.
	Broken bool
}

// Config configures the simulated client+server pair.
type Config struct {
	// Host is the remote system name.
	Host string
	// Files is the remote directory listing.
	Files []File
	// Interactive mirrors ftp's default: mget asks "mget <file>?" per
	// file. False reproduces `ftp -i` ("disables interactive prompting").
	Interactive bool
	// OnRetrieve, when non-nil, is called for each file successfully
	// transferred (the test oracle).
	OnRetrieve func(name string)
}

// New returns the simulated ftp as a spawnable program.
func New(cfg Config) proc.Program {
	host := cfg.Host
	if host == "" {
		host = "ftp.cme.nist.gov" // the paper's own distribution host
	}
	files := make(map[string]File, len(cfg.Files))
	var names []string
	for _, f := range cfg.Files {
		files[f.Name] = f
		names = append(names, f.Name)
	}
	sort.Strings(names)

	return func(stdin io.Reader, stdout io.Writer) error {
		in := newLineReader(stdin)
		connected := false
		interactive := cfg.Interactive

		transfer := func(f File) bool {
			fmt.Fprintf(stdout, "200 PORT command successful.\r\n150 Opening data connection for %s (%d bytes).\r\n", f.Name, f.Size)
			if f.Broken {
				fmt.Fprintf(stdout, "451 %s: transfer aborted: local error in processing.\r\n", f.Name)
				return false
			}
			fmt.Fprintf(stdout, "226 Transfer complete.\r\nlocal: %s remote: %s\r\n%d bytes received.\r\n",
				f.Name, f.Name, f.Size)
			if cfg.OnRetrieve != nil {
				cfg.OnRetrieve(f.Name)
			}
			return true
		}

		for {
			fmt.Fprint(stdout, "ftp> ")
			line, ok := in.readLine()
			if !ok {
				return nil
			}
			fields := strings.Fields(line)
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "open":
				if len(fields) < 2 {
					fmt.Fprint(stdout, "usage: open host\r\n")
					continue
				}
				connected = true
				fmt.Fprintf(stdout, "Connected to %s.\r\n220 %s FTP server ready.\r\nName: ", host, host)
				in.readLine() // user name (anonymous)
				fmt.Fprint(stdout, "331 Guest login ok, send ident as password.\r\nPassword: ")
				in.readLine()
				fmt.Fprint(stdout, "230 Guest login ok, access restrictions apply.\r\n")
			case "ls", "dir":
				if !requireConn(stdout, connected) {
					continue
				}
				fmt.Fprint(stdout, "200 PORT command successful.\r\n150 Opening data connection.\r\n")
				for _, n := range names {
					fmt.Fprintf(stdout, "-rw-r--r--  1 ftp ftp %8d Jun  5 1990 %s\r\n", files[n].Size, n)
				}
				fmt.Fprint(stdout, "226 Transfer complete.\r\n")
			case "prompt":
				interactive = !interactive
				state := "on"
				if !interactive {
					state = "off"
				}
				fmt.Fprintf(stdout, "Interactive mode %s.\r\n", state)
			case "get":
				if !requireConn(stdout, connected) {
					continue
				}
				if len(fields) < 2 {
					fmt.Fprint(stdout, "usage: get file\r\n")
					continue
				}
				f, okf := files[fields[1]]
				if !okf {
					fmt.Fprintf(stdout, "550 %s: No such file or directory.\r\n", fields[1])
					continue
				}
				transfer(f)
			case "mget":
				if !requireConn(stdout, connected) {
					continue
				}
				pat := "*"
				if len(fields) > 1 {
					pat = fields[1]
				}
				for _, n := range names {
					if !globLite(pat, n) {
						continue
					}
					if interactive {
						fmt.Fprintf(stdout, "mget %s? ", n)
						ans, ok := in.readLine()
						if !ok {
							return nil
						}
						if !strings.HasPrefix(strings.ToLower(strings.TrimSpace(ans)), "y") {
							continue
						}
					}
					// In -i mode failures scroll past with no recourse —
					// the loop just continues, exactly like the real client.
					transfer(files[n])
				}
			case "bye", "quit":
				fmt.Fprint(stdout, "221 Goodbye.\r\n")
				return nil
			default:
				fmt.Fprintf(stdout, "?Invalid command %q\r\n", fields[0])
			}
		}
	}
}

func requireConn(w io.Writer, connected bool) bool {
	if !connected {
		fmt.Fprint(w, "Not connected.\r\n")
	}
	return connected
}

// globLite: '*' wildcard only, which is all ftp's mget offered.
func globLite(pat, s string) bool {
	parts := strings.Split(pat, "*")
	if len(parts) == 1 {
		return pat == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, p := range parts[1 : len(parts)-1] {
		idx := strings.Index(s, p)
		if idx < 0 {
			return false
		}
		s = s[idx+len(p):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// lineReader reads \n- or \r-terminated lines.
type lineReader struct {
	in        io.Reader
	buf       []byte
	pending   []byte
	lastWasCR bool
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{in: r, buf: make([]byte, 256)}
}

func (l *lineReader) readLine() (string, bool) {
	var sb strings.Builder
	for {
		for len(l.pending) > 0 {
			c := l.pending[0]
			l.pending = l.pending[1:]
			switch c {
			case '\n':
				if l.lastWasCR && sb.Len() == 0 {
					l.lastWasCR = false
					continue
				}
				l.lastWasCR = false
				return sb.String(), true
			case '\r':
				l.lastWasCR = true
				return sb.String(), true
			default:
				l.lastWasCR = false
				sb.WriteByte(c)
			}
		}
		n, err := l.in.Read(l.buf)
		if n > 0 {
			l.pending = append(l.pending, l.buf[:n]...)
			continue
		}
		if err != nil {
			return sb.String(), sb.Len() > 0
		}
	}
}
