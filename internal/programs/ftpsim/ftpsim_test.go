package ftpsim

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func testFiles() []File {
	return []File{
		{Name: "expect.shar.Z", Size: 81920},
		{Name: "README", Size: 1200},
		{Name: "paper.ps", Size: 250000, Broken: true},
	}
}

func spawnFtp(t *testing.T, cfg Config) (*core.Session, *retrieved) {
	t.Helper()
	got := &retrieved{}
	cfg.OnRetrieve = got.add
	s, err := core.SpawnProgram(&core.Config{MatchMax: 1 << 14, Timeout: 5 * time.Second},
		"ftp", New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, got
}

type retrieved struct {
	mu    sync.Mutex
	names []string
}

func (r *retrieved) add(n string) {
	r.mu.Lock()
	r.names = append(r.names, n)
	r.mu.Unlock()
}

func (r *retrieved) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

func login(t *testing.T, s *core.Session) {
	t.Helper()
	// The client reads lines whenever they come; no need to pace on the
	// prompt (and an earlier anchored match may already have eaten it).
	s.Send("open ftp.cme.nist.gov\n")
	if _, err := s.ExpectMatch("*Name: *"); err != nil {
		t.Fatalf("name prompt: %v", err)
	}
	s.Send("anonymous\n")
	if _, err := s.ExpectMatch("*Password: *"); err != nil {
		t.Fatalf("password prompt: %v", err)
	}
	s.Send("libes@\n")
	if _, err := s.ExpectMatch("*Guest login ok, access*"); err != nil {
		t.Fatalf("login banner: %v", err)
	}
}

func TestListAndGet(t *testing.T) {
	s, got := spawnFtp(t, Config{Files: testFiles(), Interactive: true})
	login(t, s)
	s.Send("ls\n")
	r, err := s.ExpectMatch("*Transfer complete*")
	if err != nil {
		t.Fatalf("ls: %v", err)
	}
	if !strings.Contains(r.Text, "expect.shar.Z") {
		t.Errorf("listing missing file: %q", r.Text)
	}
	// The paper's own distribution instructions: ftp the shar.
	s.Send("get expect.shar.Z\n")
	if _, err := s.ExpectMatch("*226 Transfer complete*"); err != nil {
		t.Fatalf("get: %v", err)
	}
	if names := got.list(); len(names) != 1 || names[0] != "expect.shar.Z" {
		t.Errorf("retrieved = %v", names)
	}
}

func TestGetMissingAndNotConnected(t *testing.T) {
	s, _ := spawnFtp(t, Config{Files: testFiles()})
	s.ExpectMatch("*ftp> *")
	s.Send("ls\n")
	if _, err := s.ExpectMatch("*Not connected*"); err != nil {
		t.Fatalf("no connection guard: %v", err)
	}
	login(t, s)
	s.Send("get nonesuch\n")
	if _, err := s.ExpectMatch("*550*No such file*"); err != nil {
		t.Fatalf("no 550: %v", err)
	}
}

// TestBlindMgetScrollsPastErrors pins the §5.6 complaint: with prompting
// disabled, a failed transfer scrolls past and the loop carries on — no
// alternative action possible.
func TestBlindMgetScrollsPastErrors(t *testing.T) {
	s, got := spawnFtp(t, Config{Files: testFiles(), Interactive: false})
	login(t, s)
	s.Send("mget *\n")
	r, err := s.ExpectTimeout(5*time.Second, core.Glob("*451*ftp> *"))
	if err != nil {
		t.Fatalf("mget run: %v", err)
	}
	if !strings.Contains(r.Text, "451") {
		t.Errorf("no failure visible: %q", r.Text)
	}
	// The broken file is skipped, the others got through, the client
	// never asked anything.
	names := got.list()
	if len(names) != 2 {
		t.Errorf("retrieved %v, want the 2 intact files", names)
	}
	if strings.Contains(strings.Join(names, " "), "paper.ps") {
		t.Error("broken file reported as retrieved")
	}
}

// TestExpectDrivenMgetRecovers is the paper's fix: expect drives the
// interactive flavor, answers the per-file questions, sees the 451, and
// takes alternative action (retry via get after the sweep).
func TestExpectDrivenMgetRecovers(t *testing.T) {
	files := testFiles()
	s, got := spawnFtp(t, Config{Files: files, Interactive: true})
	login(t, s)
	s.Send("mget *\n")
	failed := []string{}
	for {
		r, err := s.ExpectTimeout(5*time.Second,
			core.Regexp(`mget ([^?]+)\? `),
			core.Regexp(`451 ([^:]+):`),
			core.Exact("ftp> "),
		)
		if err != nil {
			t.Fatalf("mget dialogue: %v", err)
		}
		if r.Index == 0 {
			s.Send("y\n")
			continue
		}
		if r.Index == 1 {
			// Alternative action: remember the casualty.
			f := strings.TrimSpace(r.Text[strings.LastIndex(r.Text, "451")+4:])
			f = strings.TrimSuffix(strings.Fields(f)[0], ":")
			failed = append(failed, f)
			continue
		}
		break
	}
	if len(failed) != 1 || failed[0] != "paper.ps" {
		t.Fatalf("failures observed = %v", failed)
	}
	// Retry the casualty individually (it stays broken here, but the
	// point is that the script COULD act — count the attempt).
	s.Send("get " + failed[0] + "\n")
	if _, err := s.ExpectMatch("*451*"); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if names := got.list(); len(names) != 2 {
		t.Errorf("intact files retrieved = %v", names)
	}
	s.Send("bye\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Goodbye*"), core.EOFCase()); err != nil {
		t.Fatalf("bye: %v", err)
	}
}

func TestPromptToggle(t *testing.T) {
	s, got := spawnFtp(t, Config{Files: testFiles(), Interactive: true})
	login(t, s)
	s.Send("prompt\n")
	if _, err := s.ExpectMatch("*Interactive mode off*"); err != nil {
		t.Fatalf("toggle: %v", err)
	}
	s.Send("mget README\n")
	if _, err := s.ExpectMatch("*226 Transfer complete*"); err != nil {
		t.Fatalf("mget after toggle: %v", err)
	}
	if names := got.list(); len(names) != 1 || names[0] != "README" {
		t.Errorf("retrieved = %v", names)
	}
}

func TestGlobLite(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*", "anything", true},
		{"*.Z", "expect.shar.Z", true},
		{"*.Z", "README", false},
		{"README", "README", true},
		{"READ*", "README", true},
		{"*shar*", "expect.shar.Z", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "aXcYb", false},
	}
	for _, tc := range cases {
		if got := globLite(tc.pat, tc.s); got != tc.want {
			t.Errorf("globLite(%q, %q) = %v", tc.pat, tc.s, got)
		}
	}
}
