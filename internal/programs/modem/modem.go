// Package modem simulates a Hayes-compatible modem and a minimal tip(1)
// front end, the pair the paper's callback.exp script drives (§4):
//
//	spawn tip modem
//	expect {*connected*} {}
//	send ATZ\r
//	expect {*OK*} {}
//	send ATDT[index $argv 1]\r
//	set timeout 60
//	expect {*CONNECT*} {}
//
// The simulated modem answers the AT command set (ATZ, ATD/ATDT, ATH, AT)
// and consults a phone directory to decide between CONNECT, BUSY, and NO
// CARRIER, with configurable dial latency. A directory entry may carry a
// remote program (for example a login greeter) that the modem bridges to
// after CONNECT — which is how the mail-retrieval example of §5.8 runs.
package modem

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/proc"
)

// CallResult is what dialing a number yields.
type CallResult int

// Dial outcomes.
const (
	ResultConnect CallResult = iota
	ResultBusy
	ResultNoCarrier
)

// Entry is one phone-directory row.
type Entry struct {
	Result CallResult
	// Delay before the result is reported ("modem takes a while to
	// connect" — the script raises its timeout to 60 s for this).
	Delay time.Duration
	// Speed is reported in the CONNECT banner (default 1200).
	Speed int
	// Remote, when non-nil, answers the call: after CONNECT the modem
	// bridges the caller to this program until it hangs up.
	Remote proc.Program
}

// Config configures the simulated modem.
type Config struct {
	// Directory maps dialed numbers to outcomes.
	Directory map[string]Entry
	// Default is used for numbers not in the directory.
	Default Entry
	// Echo mirrors command characters back (ATE1 behaviour).
	Echo bool
}

// New returns the modem as a spawnable program. A single goroutine owns
// the caller's input stream and feeds a channel, so command mode and the
// post-CONNECT bridge never compete for reads.
func New(cfg Config) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		input := make(chan []byte, 8)
		go func() {
			defer close(input)
			for {
				buf := make([]byte, 512)
				n, err := stdin.Read(buf)
				if n > 0 {
					input <- buf[:n]
				}
				if err != nil {
					return
				}
			}
		}()

		var pending []byte
		// nextByte pulls one byte from the stream, blocking; ok=false on EOF.
		nextByte := func() (byte, bool) {
			for len(pending) == 0 {
				chunk, ok := <-input
				if !ok {
					return 0, false
				}
				pending = chunk
			}
			b := pending[0]
			pending = pending[1:]
			return b, true
		}

		readCommand := func() (string, bool) {
			var sb strings.Builder
			for {
				c, ok := nextByte()
				if !ok {
					return sb.String(), false
				}
				if cfg.Echo {
					stdout.Write([]byte{c})
				}
				if c == '\r' || c == '\n' {
					if sb.Len() == 0 {
						continue
					}
					return sb.String(), true
				}
				sb.WriteByte(c)
			}
		}

		for {
			line, ok := readCommand()
			if !ok {
				return nil
			}
			cmd := strings.ToUpper(strings.TrimSpace(line))
			switch {
			case cmd == "":
				continue
			case cmd == "ATZ", cmd == "ATH", cmd == "AT", strings.HasPrefix(cmd, "ATE"):
				fmt.Fprint(stdout, "OK\r\n")
			case strings.HasPrefix(cmd, "ATD"):
				number := strings.TrimSpace(strings.TrimLeft(cmd[3:], "TP"))
				entry, found := cfg.Directory[number]
				if !found {
					entry = cfg.Default
				}
				if entry.Delay > 0 {
					time.Sleep(entry.Delay)
				}
				switch entry.Result {
				case ResultBusy:
					fmt.Fprint(stdout, "BUSY\r\n")
				case ResultNoCarrier:
					fmt.Fprint(stdout, "NO CARRIER\r\n")
				default:
					speed := entry.Speed
					if speed == 0 {
						speed = 1200
					}
					fmt.Fprintf(stdout, "CONNECT %d\r\n", speed)
					if entry.Remote != nil {
						pending = bridge(input, pending, stdout, entry.Remote)
						fmt.Fprint(stdout, "NO CARRIER\r\n")
					}
				}
			default:
				fmt.Fprint(stdout, "ERROR\r\n")
			}
		}
	}
}

// bridge couples the caller (via the shared input channel) to the remote
// program until the remote hangs up. It returns any caller bytes read but
// not forwarded, so command mode resumes cleanly.
func bridge(input chan []byte, pending []byte, callerOut io.Writer, remote proc.Program) []byte {
	remoteEnd, modemEnd := proc.NewDuplexPair(64 * 1024)
	remoteDone := make(chan struct{})
	go func() {
		remote(remoteEnd, remoteEnd)
		remoteEnd.Close()
		close(remoteDone)
	}()
	// Remote → caller.
	outDone := make(chan struct{})
	go func() {
		io.Copy(callerOut, modemEnd)
		close(outDone)
	}()
	// Caller → remote, until the remote hangs up.
	if len(pending) > 0 {
		modemEnd.Write(pending)
		pending = nil
	}
	for {
		select {
		case chunk, ok := <-input:
			if !ok {
				// Caller hung up: drop carrier toward the remote and let
				// it finish.
				modemEnd.CloseWrite()
				<-outDone
				<-remoteDone
				return nil
			}
			if _, err := modemEnd.Write(chunk); err != nil {
				<-outDone
				return nil
			}
		case <-remoteDone:
			<-outDone
			modemEnd.Close()
			return nil
		}
	}
}

// TipConfig configures the tip(1) front end.
type TipConfig struct {
	// Modem is the modem the "line" is wired to.
	Modem Config
}

// NewTip returns a minimal tip: it prints the "connected" banner the
// paper's script expects, then couples its caller byte-for-byte to an
// internal modem.
func NewTip(cfg TipConfig) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		fmt.Fprint(stdout, "connected\r\n")
		userEnd, modemUserEnd := proc.NewDuplexPair(64 * 1024)
		modemProg := New(cfg.Modem)
		done := make(chan struct{})
		go func() {
			modemProg(modemUserEnd, modemUserEnd)
			modemUserEnd.Close()
			close(done)
		}()
		go func() {
			io.Copy(userEnd, stdin)
			userEnd.CloseWrite()
		}()
		io.Copy(stdout, userEnd)
		<-done
		userEnd.Close()
		return nil
	}
}
