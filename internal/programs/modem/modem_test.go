package modem

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/programs/authsim"
)

func spawnModem(t *testing.T, cfg Config) *core.Session {
	t.Helper()
	s, err := core.SpawnProgram(nil, "modem", New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestATZ(t *testing.T) {
	s := spawnModem(t, Config{})
	s.Send("ATZ\r")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*OK*")); err != nil {
		t.Fatalf("ATZ: %v", err)
	}
}

func TestUnknownCommandErrors(t *testing.T) {
	s := spawnModem(t, Config{})
	s.Send("ATXYZZY\r")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*ERROR*")); err != nil {
		t.Fatalf("bad command: %v", err)
	}
}

func TestDialOutcomes(t *testing.T) {
	cfg := Config{
		Directory: map[string]Entry{
			"5551212":     {Result: ResultConnect, Speed: 2400},
			"5550000":     {Result: ResultBusy},
			"12016442332": {Result: ResultConnect}, // the paper's number
		},
		Default: Entry{Result: ResultNoCarrier},
	}
	s := spawnModem(t, cfg)
	s.Send("ATDT5550000\r")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*BUSY*")); err != nil {
		t.Fatalf("busy: %v", err)
	}
	s.Send("ATDT9999999\r")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*NO CARRIER*")); err != nil {
		t.Fatalf("no carrier: %v", err)
	}
	s.Send("ATDT5551212\r")
	r, err := s.ExpectTimeout(2*time.Second, core.Glob("*CONNECT*"))
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	if !strings.Contains(r.Text, "2400") {
		t.Errorf("wrong speed banner: %q", r.Text)
	}
}

func TestDialDelay(t *testing.T) {
	cfg := Config{Directory: map[string]Entry{
		"5551212": {Result: ResultConnect, Delay: 120 * time.Millisecond},
	}}
	s := spawnModem(t, cfg)
	s.Send("ATDT5551212\r")
	start := time.Now()
	if _, err := s.ExpectTimeout(3*time.Second, core.Glob("*CONNECT*")); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if e := time.Since(start); e < 100*time.Millisecond {
		t.Errorf("CONNECT after %v, delay not honored", e)
	}
}

func TestBridgeToRemoteLogin(t *testing.T) {
	login := authsim.NewLogin(authsim.LoginConfig{
		Accounts: map[string]string{"root": "secret"},
		Hostname: "remotehost",
	})
	cfg := Config{Directory: map[string]Entry{
		"5551212": {Result: ResultConnect, Remote: login},
	}}
	s := spawnModem(t, cfg)
	s.Send("ATDT5551212\r")
	// A regexp consumes only through the banner; an anchored glob would
	// also eat the login prompt when the bridge output coalesces with it.
	if _, err := s.ExpectTimeout(2*time.Second, core.Regexp(`CONNECT \d+`)); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*login:*")); err != nil {
		t.Fatalf("no remote login prompt: %v", err)
	}
	s.Send("root\r\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Password:*")); err != nil {
		t.Fatalf("no password prompt: %v", err)
	}
	s.Send("secret\r\n")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Welcome to remotehost*")); err != nil {
		t.Fatalf("no welcome: %v", err)
	}
	s.Send("logout\r\n")
	// Remote hangs up; the modem drops carrier and returns to command mode.
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*NO CARRIER*")); err != nil {
		t.Fatalf("no carrier drop: %v", err)
	}
	s.Send("ATZ\r")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*OK*")); err != nil {
		t.Fatalf("modem dead after call: %v", err)
	}
}

func TestTipBanner(t *testing.T) {
	tip := NewTip(TipConfig{Modem: Config{
		Directory: map[string]Entry{"123": {Result: ResultConnect}},
	}})
	s, err := core.SpawnProgram(nil, "tip", tip)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*connected*")); err != nil {
		t.Fatalf("no tip banner: %v", err)
	}
	s.Send("ATZ\r")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*OK*")); err != nil {
		t.Fatalf("tip did not reach modem: %v", err)
	}
	s.Send("ATDT123\r")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*CONNECT*")); err != nil {
		t.Fatalf("dial through tip: %v", err)
	}
}
