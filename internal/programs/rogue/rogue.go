// Package rogue simulates the BSD game the paper's flagship script drives:
// "rogue.exp - find a good game of rogue" spawns the game repeatedly until
// a character with strength 18 appears, then hands control to the user
// (§4). The real game is a curses program; what the script observes is the
// status line, so the simulator reproduces exactly that byte stream — a
// screenful of dungeon followed by
//
//	Level: 1  Gold: 0  Hp: 12(12)  Str: 16(16)  Arm: 4  Exp: 1/0
//
// — with a seedable roll distribution, plus enough command handling (move,
// rest, quit) to be an honest interactive program rather than a one-shot
// printer.
package rogue

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/proc"
)

// Config controls a simulated game.
type Config struct {
	// Seed makes the character roll deterministic; 0 draws a fresh seed.
	Seed int64
	// LuckNumerator / LuckDenominator give the probability of rolling the
	// coveted Str 18. The default is 1/16, which keeps the paper's "about
	// 10 games per second" loop busy for a realistic number of restarts.
	LuckNumerator, LuckDenominator int
	// Delay is an artificial pause before the first screen, modeling the
	// real game's startup cost. Zero means no delay.
	Delay time.Duration
	// Curses makes the game paint with VT100 cursor addressing (clear
	// screen, absolute positioning, status on row 24) the way the real
	// curses-based game does, instead of plain teletype output. Drive it
	// with a screen-tracking session (§8's terminal-emulator question) —
	// the raw byte stream is escape-sequence soup.
	Curses bool
}

var seedCounter int64

func (c Config) luck() (int, int) {
	if c.LuckNumerator <= 0 || c.LuckDenominator <= 0 {
		return 1, 16
	}
	return c.LuckNumerator, c.LuckDenominator
}

// Stats is a rolled character.
type Stats struct {
	Level, Gold, Hp, MaxHp, Str, MaxStr, Arm, Exp int
}

// Roll creates a character from r using cfg's luck.
func Roll(r *rand.Rand, cfg Config) Stats {
	num, den := cfg.luck()
	str := 5 + r.Intn(13) // 5..17
	if r.Intn(den) < num {
		str = 18
	}
	hp := 12
	return Stats{Level: 1, Gold: 0, Hp: hp, MaxHp: hp, Str: str, MaxStr: str, Arm: 4, Exp: 1}
}

// StatusLine renders the rogue status bar the paper's pattern matches.
func (s Stats) StatusLine() string {
	return fmt.Sprintf("Level: %d  Gold: %d  Hp: %d(%d)  Str: %d(%d)  Arm: %d  Exp: %d/0",
		s.Level, s.Gold, s.Hp, s.MaxHp, s.Str, s.MaxStr, s.Arm, s.Exp)
}

// cursesScreen paints the same room with VT100 addressing, status line
// on row 24, map in the middle — curses-style damage repainting.
func cursesScreen(s Stats, x, y int) string {
	var sb strings.Builder
	sb.WriteString("\x1b[2J\x1b[H")
	const w, h = 20, 5
	top := 8 // map starts at screen row 9 (1-based)
	for row := 0; row < h; row++ {
		fmt.Fprintf(&sb, "\x1b[%d;%dH", top+row+1, 5)
		for col := 0; col < w; col++ {
			switch {
			case row == 0 || row == h-1:
				sb.WriteByte('-')
			case col == 0 || col == w-1:
				sb.WriteByte('|')
			case col == x && row == y:
				sb.WriteByte('@')
			default:
				sb.WriteByte('.')
			}
		}
	}
	fmt.Fprintf(&sb, "\x1b[24;1H%s", s.StatusLine())
	// Park the cursor on the rogue, as curses does.
	fmt.Fprintf(&sb, "\x1b[%d;%dH", top+y+1, 5+x)
	return sb.String()
}

// screen draws a tiny dungeon room with the rogue at (x, y).
func screen(s Stats, x, y int) string {
	var sb strings.Builder
	sb.WriteString("\n\n")
	const w, h = 20, 5
	for row := 0; row < h; row++ {
		sb.WriteString("    ")
		for col := 0; col < w; col++ {
			switch {
			case row == 0 || row == h-1:
				sb.WriteByte('-')
			case col == 0 || col == w-1:
				sb.WriteByte('|')
			case col == x && row == y:
				sb.WriteByte('@')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(s.StatusLine())
	sb.WriteByte('\n')
	return sb.String()
}

// New returns the simulated game as a spawnable program.
func New(cfg Config) proc.Program {
	return func(stdin io.Reader, stdout io.Writer) error {
		seed := cfg.Seed
		if seed == 0 {
			seed = time.Now().UnixNano() + atomic.AddInt64(&seedCounter, 1)
		}
		r := rand.New(rand.NewSource(seed))
		if cfg.Delay > 0 {
			time.Sleep(cfg.Delay)
		}
		stats := Roll(r, cfg)
		x, y := 10, 2
		paint := screen
		if cfg.Curses {
			paint = cursesScreen
		}
		if _, err := io.WriteString(stdout, paint(stats, x, y)); err != nil {
			return nil // controller hung up
		}
		in := bufio.NewReader(stdin)
		for {
			c, err := in.ReadByte()
			if err != nil {
				return nil // EOF: the close command killed us (§3.2)
			}
			switch c {
			case 'h':
				x--
			case 'l':
				x++
			case 'k':
				y--
			case 'j':
				y++
			case 's': // search / rest: burn a turn
			case 'Q':
				io.WriteString(stdout, "really quit? ")
				ans, err := in.ReadByte()
				if err != nil || ans == 'y' || ans == 'Y' {
					io.WriteString(stdout, "\nbye bye\n")
					return nil
				}
				continue
			case '\n', '\r':
				continue
			default:
				io.WriteString(stdout, fmt.Sprintf("unknown command '%c'\n", c))
				continue
			}
			if x < 1 {
				x = 1
			}
			if x > 18 {
				x = 18
			}
			if y < 1 {
				y = 1
			}
			if y > 3 {
				y = 3
			}
			if _, err := io.WriteString(stdout, paint(stats, x, y)); err != nil {
				return nil
			}
		}
	}
}

// Main runs the game over real stdio for the cmd/rogue binary.
func Main(cfg Config, stdin io.Reader, stdout io.Writer) error {
	return New(cfg)(stdin, stdout)
}
