package rogue

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestStatusLineFormat(t *testing.T) {
	s := Stats{Level: 1, Gold: 0, Hp: 12, MaxHp: 12, Str: 18, MaxStr: 18, Arm: 4, Exp: 1}
	line := s.StatusLine()
	want := "Level: 1  Gold: 0  Hp: 12(12)  Str: 18(18)  Arm: 4  Exp: 1/0"
	if line != want {
		t.Errorf("StatusLine = %q, want %q", line, want)
	}
	// The paper's pattern must match a screen containing this line.
	if !strings.Contains(line, "Str: 18") {
		t.Error("pattern anchor missing")
	}
}

func TestRollDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	cfg := Config{LuckNumerator: 1, LuckDenominator: 16}
	n18 := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		s := Roll(r, cfg)
		if s.Str < 5 || s.Str > 18 {
			t.Fatalf("rolled Str %d out of range", s.Str)
		}
		if s.Str == 18 {
			n18++
		}
	}
	// Expected ≈ 1/16 + (1-1/16)/13·P(17→18)… conservatively between 4%
	// and 15% (the luck path plus natural 18s from the uniform roll).
	frac := float64(n18) / trials
	if frac < 0.04 || frac > 0.25 {
		t.Errorf("Str 18 fraction = %.3f, outside plausible band", frac)
	}
}

func TestRollDeterministicWithSeed(t *testing.T) {
	a := Roll(rand.New(rand.NewSource(5)), Config{})
	b := Roll(rand.New(rand.NewSource(5)), Config{})
	if a != b {
		t.Errorf("same seed rolled %+v vs %+v", a, b)
	}
}

func TestGameInteraction(t *testing.T) {
	s, err := core.SpawnProgram(nil, "rogue", New(Config{Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.ExpectTimeout(2*time.Second, core.Glob("*Str:*"))
	if err != nil {
		t.Fatalf("no status line: %v", err)
	}
	if !strings.Contains(r.Text, "@") {
		t.Error("no rogue on the map")
	}
	// Move and see a redraw.
	s.Send("l")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Str:*")); err != nil {
		t.Fatalf("no redraw after move: %v", err)
	}
	// Quit politely.
	s.Send("Q")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*really quit?*")); err != nil {
		t.Fatalf("no quit prompt: %v", err)
	}
	s.Send("y")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*bye bye*")); err != nil {
		t.Fatalf("no farewell: %v", err)
	}
	if code, _ := s.Wait(); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestCloseKillsGame(t *testing.T) {
	s, err := core.SpawnProgram(nil, "rogue", New(Config{Seed: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Str:*")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("rogue survived close — EOF must kill it (§3.2)")
	}
}

func TestLuckCertainProducesStr18(t *testing.T) {
	cfg := Config{Seed: 11, LuckNumerator: 1, LuckDenominator: 1}
	s, err := core.SpawnProgram(nil, "rogue", New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Str: 18*")); err != nil {
		t.Fatalf("guaranteed-luck game did not roll Str 18: %v", err)
	}
}

func TestCursesModePaintsEscapes(t *testing.T) {
	s, err := core.SpawnProgram(&core.Config{MatchMax: 1 << 14}, "rogue",
		New(Config{Seed: 3, Curses: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.ExpectTimeout(2*time.Second, core.Regexp(`Str: \d+`))
	if err != nil {
		t.Fatalf("no status: %v", err)
	}
	if !strings.Contains(r.Text, "\x1b[2J") || !strings.Contains(r.Text, "\x1b[24;1H") {
		t.Errorf("curses mode output lacks escapes: %q", r.Text[:40])
	}
}

func TestUnknownCommandAndWalls(t *testing.T) {
	s, err := core.SpawnProgram(nil, "rogue", New(Config{Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ExpectTimeout(2*time.Second, core.Glob("*Str:*"))
	s.Send("z")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*unknown command*")); err != nil {
		t.Fatalf("no complaint: %v", err)
	}
	// Walk hard into the left wall; the rogue must stay inside the room.
	for i := 0; i < 15; i++ {
		s.Send("h")
		if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Str:*")); err != nil {
			t.Fatalf("redraw %d: %v", i, err)
		}
	}
	last, _ := s.ExpectTimeout(100*time.Millisecond, core.TimeoutCase())
	_ = last
	s.Send("k") // also bump the top
	r, err := s.ExpectTimeout(2*time.Second, core.Glob("*@*"))
	if err != nil {
		t.Fatalf("rogue left the dungeon: %v", err)
	}
	if !strings.Contains(r.Text, "|") {
		t.Errorf("no walls drawn: %q", r.Text)
	}
}

func TestQuitDeclined(t *testing.T) {
	s, err := core.SpawnProgram(nil, "rogue", New(Config{Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ExpectTimeout(2*time.Second, core.Glob("*Str:*"))
	s.Send("Q")
	s.ExpectTimeout(2*time.Second, core.Glob("*really quit?*"))
	s.Send("n")
	// Game lives on.
	s.Send("l")
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Str:*")); err != nil {
		t.Fatalf("game died after declined quit: %v", err)
	}
}

func TestStartupDelay(t *testing.T) {
	s, err := core.SpawnProgram(nil, "rogue",
		New(Config{Seed: 3, Delay: 80 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	if _, err := s.ExpectTimeout(2*time.Second, core.Glob("*Str:*")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 70*time.Millisecond {
		t.Error("startup delay not honored")
	}
}
