// Package pty allocates and configures pseudo-terminals, the device layer
// that lets expect control programs which insist on a terminal (§2.1 of the
// paper). Ptys are what solve both of the paper's shell problems: they give
// a two-way channel with terminal semantics, and a program that opens
// /dev/tty to bypass redirection ends up talking to its pty — that is, to
// the expect engine.
//
// The implementation speaks directly to /dev/ptmx with the Unix98 ioctls;
// there are no dependencies beyond the standard library.
package pty

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// Pty is an allocated pseudo-terminal pair. Master is held by the
// controlling (expect) side; SlavePath names the device the spawned child
// opens as its controlling terminal.
type Pty struct {
	Master    *os.File
	SlavePath string
}

const (
	ioctlTIOCGPTN   = 0x80045430 // get pty number
	ioctlTIOCSPTLCK = 0x40045431 // lock/unlock slave
	ioctlTIOCSWINSZ = 0x5414
	ioctlTIOCGWINSZ = 0x5413
	ioctlTCGETS     = 0x5401
	ioctlTCSETS     = 0x5402
)

// Open allocates a new pty pair via /dev/ptmx.
func Open() (*Pty, error) {
	master, err := os.OpenFile("/dev/ptmx", os.O_RDWR|syscall.O_NOCTTY, 0)
	if err != nil {
		return nil, fmt.Errorf("pty: open /dev/ptmx: %w", err)
	}
	var n uint32
	if err := ioctl(master.Fd(), ioctlTIOCGPTN, uintptr(unsafe.Pointer(&n))); err != nil {
		master.Close()
		return nil, fmt.Errorf("pty: TIOCGPTN: %w", err)
	}
	var unlock int32 // 0 unlocks
	if err := ioctl(master.Fd(), ioctlTIOCSPTLCK, uintptr(unsafe.Pointer(&unlock))); err != nil {
		master.Close()
		return nil, fmt.Errorf("pty: TIOCSPTLCK: %w", err)
	}
	return &Pty{Master: master, SlavePath: fmt.Sprintf("/dev/pts/%d", n)}, nil
}

// OpenSlave opens the slave side. The child process receives this file as
// its stdin, stdout, and stderr — the paper's overloading of stderr onto
// the stdout path falls out of all three sharing one terminal.
func (p *Pty) OpenSlave() (*os.File, error) {
	f, err := os.OpenFile(p.SlavePath, os.O_RDWR|syscall.O_NOCTTY, 0)
	if err != nil {
		return nil, fmt.Errorf("pty: open slave %s: %w", p.SlavePath, err)
	}
	return f, nil
}

// Close releases the master (which hangs up the slave).
func (p *Pty) Close() error { return p.Master.Close() }

func ioctl(fd uintptr, req, arg uintptr) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, fd, req, arg)
	if errno != 0 {
		return errno
	}
	return nil
}

// Winsize is the terminal dimensions structure.
type Winsize struct {
	Rows, Cols, X, Y uint16
}

// SetWinsize sets the terminal size on f (typically the master). Programs
// like the paper's rogue read this to lay out their screen.
func SetWinsize(f *os.File, rows, cols uint16) error {
	ws := Winsize{Rows: rows, Cols: cols}
	return ioctl(f.Fd(), ioctlTIOCSWINSZ, uintptr(unsafe.Pointer(&ws)))
}

// GetWinsize reads the terminal size from f.
func GetWinsize(f *os.File) (Winsize, error) {
	var ws Winsize
	err := ioctl(f.Fd(), ioctlTIOCGWINSZ, uintptr(unsafe.Pointer(&ws)))
	return ws, err
}

// Termios is the kernel terminal attribute structure (struct termios).
type Termios struct {
	Iflag, Oflag, Cflag, Lflag uint32
	Line                       uint8
	Cc                         [19]uint8
	Ispeed, Ospeed             uint32
}

// Terminal attribute bits used below (from <termios.h>).
const (
	flagICANON = 0x2
	flagECHO   = 0x8
	flagISIG   = 0x1
	flagIXON   = 0x400
	flagICRNL  = 0x100
	flagOPOST  = 0x1
	flagONLCR  = 0x4
	ccVMIN     = 6
	ccVTIME    = 5
)

// GetAttr reads terminal attributes from f.
func GetAttr(f *os.File) (*Termios, error) {
	t := &Termios{}
	if err := ioctl(f.Fd(), ioctlTCGETS, uintptr(unsafe.Pointer(t))); err != nil {
		return nil, fmt.Errorf("pty: TCGETS: %w", err)
	}
	return t, nil
}

// SetAttr writes terminal attributes to f.
func SetAttr(f *os.File, t *Termios) error {
	if err := ioctl(f.Fd(), ioctlTCSETS, uintptr(unsafe.Pointer(t))); err != nil {
		return fmt.Errorf("pty: TCSETS: %w", err)
	}
	return nil
}

// MakeRaw puts f into raw mode — no echo, no canonical line editing, no
// signal generation — and returns a restore function. interact uses this on
// the user's tty so every keystroke (including job control characters,
// §7.3) passes straight through to the current process.
func MakeRaw(f *os.File) (restore func() error, err error) {
	old, err := GetAttr(f)
	if err != nil {
		return nil, err
	}
	raw := *old
	raw.Lflag &^= flagICANON | flagECHO | flagISIG
	raw.Iflag &^= flagIXON | flagICRNL
	raw.Oflag &^= flagOPOST
	raw.Cc[ccVMIN] = 1
	raw.Cc[ccVTIME] = 0
	if err := SetAttr(f, &raw); err != nil {
		return nil, err
	}
	return func() error { return SetAttr(f, old) }, nil
}

// SetEcho switches terminal echo on or off. The passwd simulator uses this
// to suppress password echo, exactly like the real program.
func SetEcho(f *os.File, on bool) error {
	t, err := GetAttr(f)
	if err != nil {
		return err
	}
	if on {
		t.Lflag |= flagECHO
	} else {
		t.Lflag &^= flagECHO
	}
	return SetAttr(f, t)
}

// DisableOutputProcessing turns off ONLCR on the slave so a child's "\n"
// arrives at the master as "\n" rather than "\r\n". Spawn leaves processing
// on by default (faithful to real ptys); tests that want exact bytes can
// turn it off.
func DisableOutputProcessing(f *os.File) error {
	t, err := GetAttr(f)
	if err != nil {
		return err
	}
	t.Oflag &^= flagONLCR | flagOPOST
	return SetAttr(f, t)
}

// IsTerminal reports whether f refers to a terminal device.
func IsTerminal(f *os.File) bool {
	_, err := GetAttr(f)
	return err == nil
}
