package pty

import (
	"os"
	"strings"
	"testing"

	"repro/internal/testutil"
)

func openPair(t *testing.T) (*Pty, *os.File) {
	t.Helper()
	// Gate on the capability explicitly: once /dev/ptmx exists, an Open
	// failure is a bug to report, not an environment quirk to skip.
	testutil.RequirePty(t)
	p, err := Open()
	if err != nil {
		t.Fatalf("pty open: %v", err)
	}
	slave, err := p.OpenSlave()
	if err != nil {
		p.Close()
		t.Fatalf("open slave: %v", err)
	}
	t.Cleanup(func() { slave.Close(); p.Close() })
	return p, slave
}

func TestOpenAllocatesSlavePath(t *testing.T) {
	p, _ := openPair(t)
	if !strings.HasPrefix(p.SlavePath, "/dev/pts/") {
		t.Errorf("slave path %q", p.SlavePath)
	}
}

func TestDataFlowsBothWays(t *testing.T) {
	p, slave := openPair(t)
	if err := DisableOutputProcessing(slave); err != nil {
		t.Fatal(err)
	}
	if err := SetEcho(slave, false); err != nil {
		t.Fatal(err)
	}
	// Slave → master.
	if _, err := slave.WriteString("from-slave\n"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := p.Master.Read(buf)
	if err != nil || !strings.Contains(string(buf[:n]), "from-slave") {
		t.Fatalf("master read %q, %v", buf[:n], err)
	}
	// Master → slave (needs newline: slave is canonical by default).
	if _, err := p.Master.WriteString("to-slave\n"); err != nil {
		t.Fatal(err)
	}
	n, err = slave.Read(buf)
	if err != nil || !strings.Contains(string(buf[:n]), "to-slave") {
		t.Fatalf("slave read %q, %v", buf[:n], err)
	}
}

func TestWinsizeRoundTrip(t *testing.T) {
	p, _ := openPair(t)
	if err := SetWinsize(p.Master, 42, 132); err != nil {
		t.Fatal(err)
	}
	ws, err := GetWinsize(p.Master)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Rows != 42 || ws.Cols != 132 {
		t.Errorf("winsize = %dx%d, want 42x132", ws.Rows, ws.Cols)
	}
}

func TestEchoToggle(t *testing.T) {
	_, slave := openPair(t)
	if err := SetEcho(slave, false); err != nil {
		t.Fatal(err)
	}
	attr, err := GetAttr(slave)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Lflag&flagECHO != 0 {
		t.Error("echo still on after SetEcho(false)")
	}
	if err := SetEcho(slave, true); err != nil {
		t.Fatal(err)
	}
	attr, _ = GetAttr(slave)
	if attr.Lflag&flagECHO == 0 {
		t.Error("echo off after SetEcho(true)")
	}
}

func TestMakeRawAndRestore(t *testing.T) {
	_, slave := openPair(t)
	before, err := GetAttr(slave)
	if err != nil {
		t.Fatal(err)
	}
	restore, err := MakeRaw(slave)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := GetAttr(slave)
	if raw.Lflag&flagICANON != 0 || raw.Lflag&flagECHO != 0 {
		t.Error("raw mode left canonical/echo bits set")
	}
	if err := restore(); err != nil {
		t.Fatal(err)
	}
	after, _ := GetAttr(slave)
	if after.Lflag != before.Lflag {
		t.Errorf("restore mismatch: %x vs %x", after.Lflag, before.Lflag)
	}
}

func TestIsTerminal(t *testing.T) {
	p, slave := openPair(t)
	if !IsTerminal(slave) || !IsTerminal(p.Master) {
		t.Error("pty endpoints not recognized as terminals")
	}
	f, err := os.Open("/dev/null")
	if err == nil {
		defer f.Close()
		if IsTerminal(f) {
			t.Error("/dev/null claimed to be a terminal")
		}
	}
}

func TestEchoIsTheDefault(t *testing.T) {
	// Fresh slaves echo — the behaviour expect scripts see: what you send
	// comes back interleaved with the program's output.
	_, slave := openPair(t)
	attr, err := GetAttr(slave)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Lflag&flagECHO == 0 {
		t.Error("fresh pty slave does not echo")
	}
}
