package replay_test

import (
	"bytes"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/trace"
)

// replayObservables replays a journal once and returns the concatenated
// normalized observables of every session, failing on any divergence.
func replayObservables(t *testing.T, journal []byte, round int) []byte {
	t.Helper()
	reports, err := replay.RunJournal(journal, replay.Options{})
	if err != nil {
		t.Fatalf("replay round %d: %v", round, err)
	}
	if len(reports) == 0 {
		t.Fatalf("replay round %d: no sessions", round)
	}
	var all []byte
	for _, rep := range reports {
		if !rep.Clean() {
			t.Fatalf("replay round %d diverged: %s", round, rep)
		}
		events, err := trace.ParseJSONL(rep.ReplayJournal)
		if err != nil {
			t.Fatalf("replay round %d journal unparseable: %v", round, err)
		}
		norm, _ := replay.Normalize(events, rep.SID)
		all = append(all, trace.MarshalJSONL(norm)...)
	}
	return all
}

// TestReplayDeterminismMatrix is the replay-determinism matrix: every
// conformance scenario is journaled once under every fault condition,
// then the journal is replayed three times. Each replay must be clean
// (same match/timeout/EOF dispositions, same wakeup-ordered scans) and
// the three replays' normalized observables must be byte-identical —
// replay is a function of the journal alone, not of the wall clock, the
// scheduler, or the fault schedule that produced it.
func TestReplayDeterminismMatrix(t *testing.T) {
	for _, sc := range conformance.AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, cond := range conformance.Conditions {
				cond := cond
				t.Run(cond.Name, func(t *testing.T) {
					t.Parallel()
					_, journal, err := conformance.RunScenarioJournaled(sc, conformance.ScenarioRun{
						Matcher: core.MatcherRescan, Sched: cond.Sched,
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(journal) == 0 {
						t.Fatal("scenario produced an empty journal")
					}
					var prev []byte
					for round := 1; round <= 3; round++ {
						got := replayObservables(t, journal, round)
						if prev != nil && !bytes.Equal(prev, got) {
							t.Fatalf("round %d observables differ from round %d", round, round-1)
						}
						prev = got
					}
				})
			}
		})
	}
}

// TestReplayShardedScenarioJournal covers the sharded-scheduler journal
// shape (shard loops interleave ingest and stepping differently from the
// pump): a journal recorded under shards must replay just as clean.
func TestReplayShardedScenarioJournal(t *testing.T) {
	for _, sc := range conformance.AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			_, journal, err := conformance.RunScenarioJournaled(sc, conformance.ScenarioRun{
				Matcher: core.MatcherRescan,
				Sched:   conformance.Conditions[0].Sched,
				Shards:  4,
			})
			if err != nil {
				t.Fatal(err)
			}
			replayObservables(t, journal, 1)
		})
	}
}

// TestReplayScenarioJournalMutation re-checks the mutation property on a
// real scenario journal (not just the hand-built login dialogue): flip
// one journaled read byte and the replayer must report, never absorb.
func TestReplayScenarioJournalMutation(t *testing.T) {
	_, journal, err := conformance.RunScenarioJournaled(conformance.Scenarios[0], conformance.ScenarioRun{
		Matcher: core.MatcherRescan, Sched: conformance.Conditions[0].Sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ParseJSONL(journal)
	if err != nil {
		t.Fatal(err)
	}
	mutated := false
	for i := range events {
		if events[i].Kind == trace.KindRead.String() && len(events[i].Data) > 0 {
			events[i].Data[0] ^= 0x01
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no read payload to mutate")
	}
	reports, err := replay.RunJournal(trace.MarshalJSONL(events), replay.Options{})
	if err != nil {
		return // structural rejection is loud reporting too
	}
	for _, rep := range reports {
		if !rep.Clean() {
			return
		}
	}
	t.Fatal("mutated scenario journal replayed clean")
}
