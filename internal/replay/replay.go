// Package replay re-drives sessions byte-for-byte from their flight-
// recorder journals. A journal (trace.Journal) carries every read chunk,
// send, expect call (with its serialized case list), pattern attempt,
// and resolution with full payloads; the replay engine reconstructs the
// run against a virtual transport — core.NewManualSession, no child, no
// goroutines, no wall clock — reproducing the exact chunk boundaries and
// wakeup structure, then diffs the replay's own journal against the
// original's observables. A clean replay proves the recorded dialogue is
// deterministic; a divergence pins the first event where the engine (or
// a corrupted journal) disagrees with history.
//
// The replay clock is virtual: recorded timeouts resolve by stepping the
// expect op with the clock forced past its deadline, so replaying a
// 10-second timeout costs microseconds.
//
// Fidelity covers the Expect-driven dialogue path (the engine's core
// loop). Multi-session ExpectAny and Interact record no match events, so
// their sessions replay as read/write streams only.
package replay

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Options parameterize a replay run. Matcher and MatchMax must mirror the
// original session's creation-time config (mid-run match_max changes are
// journaled as config events and reapplied automatically).
type Options struct {
	Matcher  core.MatcherMode
	MatchMax int
	// Name overrides the session name (defaults to the journal's spawn
	// event name, else "replay").
	Name string
}

// Divergence is one detected disagreement between the journal and the
// replayed engine, anchored at the original journal's sequence number.
type Divergence struct {
	Seq    uint64 `json:"seq"`
	Detail string `json:"detail"`
}

// Report is the outcome of replaying one session.
type Report struct {
	SID  int32  `json:"sid"`
	Name string `json:"name"`
	// Ops/Reads/Writes/Scans count the driven actions; Compared counts
	// observable events diffed against the original.
	Ops      int `json:"ops"`
	Reads    int `json:"reads"`
	Writes   int `json:"writes"`
	Scans    int `json:"scans"`
	Compared int `json:"compared"`
	// Unresolved marks a journal that ends mid-expect (a crashed or
	// abandoned op) — legal, not a divergence.
	Unresolved  bool         `json:"unresolved,omitempty"`
	Divergences []Divergence `json:"divergences,omitempty"`
	// ReplayJournal is the replay run's own journal (normalized
	// comparison uses Normalize on both sides; this is the raw stream).
	ReplayJournal []byte `json:"-"`
}

// Clean reports whether the replay reproduced the journal exactly.
func (r *Report) Clean() bool { return len(r.Divergences) == 0 }

func (r *Report) String() string {
	state := "clean"
	if !r.Clean() {
		state = fmt.Sprintf("%d divergences (first at seq %d: %s)",
			len(r.Divergences), r.Divergences[0].Seq, r.Divergences[0].Detail)
	}
	return fmt.Sprintf("replay sid %d (%s): %d ops, %d reads, %d writes, %d scans, %d events compared: %s",
		r.SID, r.Name, r.Ops, r.Reads, r.Writes, r.Scans, r.Compared, state)
}

// SIDs lists the distinct session ids present in a parsed journal,
// ascending, ignoring the engine-global -1.
func SIDs(events []trace.EventJSON) []int32 {
	seen := map[int32]bool{}
	for i := range events {
		if events[i].SID >= 0 {
			seen[events[i].SID] = true
		}
	}
	out := make([]int32, 0, len(seen))
	for sid := range seen {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunJournal parses a JSONL journal and replays every session in it.
// Parse errors are fatal — a journal that does not parse strictly must
// never feed a silently shortened replay.
func RunJournal(journal []byte, opt Options) ([]*Report, error) {
	events, err := trace.ParseJSONL(journal)
	if err != nil {
		return nil, err
	}
	var reports []*Report
	for _, sid := range SIDs(events) {
		rep, err := Run(events, sid, opt)
		if err != nil {
			return reports, fmt.Errorf("replay sid %d: %w", sid, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// observable says which event kinds constitute the replay-comparable
// surface. Timer events depend on wall-clock scheduling, spawn/exit on
// process identity, eval on script-side activity, and fault events on the
// injection transport — none are reproduced by (or meaningful to) a
// byte-stream replay.
func observable(k trace.Kind) bool {
	switch k {
	case trace.KindRead, trace.KindWrite, trace.KindExpect, trace.KindAttempt,
		trace.KindMatch, trace.KindTimeout, trace.KindEOF, trace.KindForget,
		trace.KindConfig:
		return true
	}
	return false
}

// Normalize filters events to one session's observable surface and zeroes
// the clock-dependent fields (seq, timestamps, timeout elapsed), leaving
// exactly the bytes two equivalent runs must agree on. The returned seqs
// slice carries each normalized event's original sequence number for
// divergence anchoring.
func Normalize(events []trace.EventJSON, sid int32) ([]trace.EventJSON, []uint64) {
	var out []trace.EventJSON
	var seqs []uint64
	for _, e := range events {
		if e.SID != sid {
			continue
		}
		k, ok := e.KindID()
		if !ok || !observable(k) {
			continue
		}
		seqs = append(seqs, e.Seq)
		e.Seq, e.TNs = 0, 0
		if k == trace.KindTimeout {
			e.B = 0 // elapsed wall time
		}
		out = append(out, e)
	}
	return out, seqs
}

// step kinds: the journal's driving alphabet after scan grouping.
type stepKind int

const (
	stepRead stepKind = iota
	stepWrite
	stepExpect
	stepScan // one wakeup's run of attempt events
	stepMatch
	stepTimeout
	stepEOF
	stepConfig
)

type step struct {
	kind stepKind
	ev   trace.EventJSON
}

// buildSteps tokenizes one session's events into driving steps.
// Consecutive attempt events form one scan (one wakeup) until the case
// index resets — stepLocked tries cases in ascending order, so an index
// that fails to increase marks the next wakeup.
func buildSteps(events []trace.EventJSON, sid int32) []step {
	var steps []step
	inScan := false
	lastIdx := int64(-1)
	for _, e := range events {
		if e.SID != sid {
			continue
		}
		k, ok := e.KindID()
		if !ok {
			continue
		}
		if k == trace.KindAttempt {
			if !inScan || e.A <= lastIdx {
				steps = append(steps, step{stepScan, e})
				inScan = true
			}
			lastIdx = e.A
			continue
		}
		inScan, lastIdx = false, -1
		switch k {
		case trace.KindRead:
			steps = append(steps, step{stepRead, e})
		case trace.KindWrite:
			steps = append(steps, step{stepWrite, e})
		case trace.KindExpect:
			steps = append(steps, step{stepExpect, e})
		case trace.KindMatch:
			steps = append(steps, step{stepMatch, e})
		case trace.KindTimeout:
			steps = append(steps, step{stepTimeout, e})
		case trace.KindEOF:
			steps = append(steps, step{stepEOF, e})
		case trace.KindConfig:
			steps = append(steps, step{stepConfig, e})
		}
	}
	return steps
}

// payload returns an event's full byte payload, failing loudly when the
// journal lacks it (a bounded ring dump is not a replayable journal).
func payload(e *trace.EventJSON) ([]byte, error) {
	if e.Data != nil {
		return e.Data, nil
	}
	if e.A == 0 {
		return nil, nil
	}
	return nil, fmt.Errorf("event seq %d (%s): %d-byte payload missing — not a full-payload journal", e.Seq, e.Kind, e.A)
}

// eofErr reconstructs the read error an eof event recorded (nil for a
// clean close).
func eofErr(e *trace.EventJSON) error {
	if e.Aux == "" {
		return nil
	}
	return errors.New(e.Aux)
}

// Run replays one session from a parsed journal and diffs the result.
// An error means the journal is not replayable at all (missing payloads,
// undecodable case lists); engine disagreements land in the report's
// Divergences instead.
func Run(events []trace.EventJSON, sid int32, opt Options) (*Report, error) {
	name := opt.Name
	for _, e := range events {
		if e.SID == sid && e.Kind == trace.KindSpawn.String() && name == "" {
			name = e.Text
		}
	}
	if name == "" {
		name = "replay"
	}

	rec := trace.New(0)
	jrn := trace.NewJournal()
	rec.SetJournal(jrn)
	cfg := &core.Config{
		Matcher:  opt.Matcher,
		MatchMax: opt.MatchMax,
		Rec:      rec,
		SID:      sid,
	}
	s := core.NewManualSession(cfg, name)
	defer s.Close()

	rep := &Report{SID: sid, Name: name}
	diverge := func(seq uint64, format string, args ...any) {
		rep.Divergences = append(rep.Divergences, Divergence{Seq: seq, Detail: fmt.Sprintf(format, args...)})
	}

	steps := buildSteps(events, sid)
	var m *core.ManualExpect

	// resolved checks a final step's verdict against the recorded
	// disposition; the byte-level diff below catches the finer fields.
	resolved := func(st step, res *core.MatchResult, err error, done bool) {
		if !done {
			diverge(st.ev.Seq, "original resolved with %s; replay kept waiting", st.ev.Kind)
			return
		}
		switch st.kind {
		case stepMatch:
			if res == nil || err != nil || res.TimedOut || res.Eof {
				diverge(st.ev.Seq, "original matched case %d; replay resolved otherwise (res=%+v err=%v)", st.ev.A, res, err)
			} else if int64(res.Index) != st.ev.A {
				diverge(st.ev.Seq, "original matched case %d; replay matched case %d", st.ev.A, res.Index)
			}
		case stepTimeout:
			if res == nil || !res.TimedOut {
				diverge(st.ev.Seq, "original timed out; replay resolved otherwise (res=%+v err=%v)", res, err)
			}
		case stepEOF:
			if res == nil || !res.Eof {
				diverge(st.ev.Seq, "original hit EOF; replay resolved otherwise (res=%+v err=%v)", res, err)
			}
		}
	}

drive:
	for i := 0; i < len(steps); i++ {
		st := steps[i]
		if len(rep.Divergences) > 0 {
			break // state after a divergence is not history; stop driving
		}
		switch st.kind {
		case stepConfig:
			if st.ev.Text == "match_max" {
				s.SetMatchMax(int(st.ev.A))
			}
		case stepRead:
			p, err := payload(&st.ev)
			if err != nil {
				return rep, err
			}
			rep.Reads++
			s.Feed(p)
		case stepWrite:
			p, err := payload(&st.ev)
			if err != nil {
				return rep, err
			}
			rep.Writes++
			if err := s.SendBytes(p); err != nil {
				return rep, fmt.Errorf("replay send: %w", err)
			}
		case stepExpect:
			// A still-open op here is an abandoned one (an ExpectAny
			// loser); the original dropped it without resolution.
			cases, err := core.DecodeCases(st.ev.Data)
			if err != nil {
				return rep, fmt.Errorf("event seq %d: %w (full-payload journal required)", st.ev.Seq, err)
			}
			rep.Ops++
			m = s.BeginExpect(time.Duration(st.ev.B), cases...)
		case stepScan:
			if m == nil {
				diverge(st.ev.Seq, "pattern attempts outside any expect call")
				break drive
			}
			rep.Scans++
			var next stepKind = -1
			if i+1 < len(steps) {
				next = steps[i+1].kind
			}
			switch next {
			case stepTimeout:
				// This scan is the timeout wakeup: one step with the
				// clock forced past the deadline scans and then resolves.
				i++
				res, err, done := m.StepDeadline()
				resolved(steps[i], res, err, done)
				m = nil
			case stepEOF:
				i++
				s.FeedEOF(eofErr(&steps[i].ev))
				res, err, done := m.Step()
				resolved(steps[i], res, err, done)
				m = nil
			case stepMatch:
				i++
				res, err, done := m.Step()
				resolved(steps[i], res, err, done)
				m = nil
			default:
				if res, err, done := m.Step(); done {
					diverge(st.ev.Seq, "replay resolved early (res=%+v err=%v); original kept waiting", res, err)
					m = nil
				}
			}
		case stepMatch, stepTimeout, stepEOF:
			// Resolution without a preceding scan: an op with no pattern
			// cases (pure eof/timeout arms) leaves no attempt events.
			if m == nil {
				diverge(st.ev.Seq, "%s outside any expect call", st.ev.Kind)
				break drive
			}
			var res *core.MatchResult
			var err error
			var done bool
			switch st.kind {
			case stepTimeout:
				res, err, done = m.StepDeadline()
			case stepEOF:
				s.FeedEOF(eofErr(&st.ev))
				res, err, done = m.Step()
			default:
				res, err, done = m.Step()
			}
			resolved(st, res, err, done)
			m = nil
		}
	}
	rep.Unresolved = m != nil

	// Byte-level diff: the replay's own journal against the original's
	// observable surface. This is where a corrupted payload, a wrong
	// consumed count, or a flipped attempt verdict surfaces even when the
	// driving structure held.
	rep.ReplayJournal = jrn.Bytes()
	replayEvents, err := trace.ParseJSONL(rep.ReplayJournal)
	if err != nil {
		return rep, fmt.Errorf("replay journal did not parse back: %w", err)
	}
	orig, seqs := Normalize(events, sid)
	got, _ := Normalize(replayEvents, sid)
	n := len(orig)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		a := trace.MarshalJSONL(orig[i : i+1])
		b := trace.MarshalJSONL(got[i : i+1])
		if !bytes.Equal(a, b) {
			diverge(seqs[i], "observable %d differs:\n  original: %s  replay:   %s", i, a, b)
			break
		}
	}
	rep.Compared = n
	if len(rep.Divergences) == 0 && len(orig) != len(got) {
		seq := uint64(0)
		if len(orig) > 0 {
			seq = seqs[len(orig)-1]
		}
		diverge(seq, "original has %d observable events, replay produced %d", len(orig), len(got))
	}
	return rep, nil
}
