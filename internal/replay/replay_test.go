package replay

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// journaledConfig arms a fresh recorder+journal on a session config.
func journaledConfig(t *testing.T) (*core.Config, *trace.Journal) {
	t.Helper()
	rec := trace.New(0)
	jrn := trace.NewJournal()
	rec.SetJournal(jrn)
	return &core.Config{Rec: rec, SID: 1}, jrn
}

func blockForever(stdin io.Reader) {
	io.Copy(io.Discard, stdin)
}

// runLoginDialogue drives a three-op prompt/response/EOF dialogue and
// returns its journal.
func runLoginDialogue(t *testing.T, cfg *core.Config, jrn *trace.Journal) []byte {
	t.Helper()
	s, err := core.SpawnProgram(cfg, "login-sim", func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, "login: ")
		line := make([]byte, 64)
		n, _ := stdin.Read(line)
		io.WriteString(stdout, "password: ")
		stdin.Read(line[:n])
		io.WriteString(stdout, "welcome!\r\n")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ExpectTimeout(5*time.Second, core.Glob("*login: ")); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("user\r"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExpectTimeout(5*time.Second, core.Exact("password: ")); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("secret\r"); err != nil {
		t.Fatal(err)
	}
	r, err := s.ExpectTimeout(5*time.Second, core.Glob("*welcome*"), core.EOFCase())
	if err != nil {
		t.Fatal(err)
	}
	if r.Index != 0 {
		t.Fatalf("expected welcome match, got %+v", r)
	}
	// Drain to EOF so the journal carries the hangup too.
	if _, err := s.ExpectTimeout(5*time.Second, core.EOFCase()); err != nil {
		t.Fatal(err)
	}
	return jrn.Bytes()
}

func TestReplayCleanDialogue(t *testing.T) {
	cfg, jrn := journaledConfig(t)
	journal := runLoginDialogue(t, cfg, jrn)

	reports, err := RunJournal(journal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports", len(reports))
	}
	rep := reports[0]
	if !rep.Clean() {
		t.Fatalf("replay diverged: %s", rep)
	}
	if rep.Ops != 4 || rep.Writes != 2 {
		t.Fatalf("unexpected shape: %s", rep)
	}
	if rep.Compared == 0 {
		t.Fatal("nothing compared")
	}
	if rep.Unresolved {
		t.Fatal("dialogue fully resolved; report says unresolved")
	}
}

// The sharded scheduler and the classic pump must produce journals that
// replay equally clean.
func TestReplayShardedDialogue(t *testing.T) {
	cfg, jrn := journaledConfig(t)
	sched := core.NewScheduler(core.SchedulerOptions{Shards: 2})
	defer sched.Stop()
	cfg.Sched = sched
	journal := runLoginDialogue(t, cfg, jrn)

	reports, err := RunJournal(journal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || !reports[0].Clean() {
		t.Fatalf("sharded journal replay diverged: %v", reports)
	}
}

// A recorded 300ms timeout must replay on the virtual clock: same
// disposition, near-zero wall time.
func TestReplayTimeoutVirtualClock(t *testing.T) {
	cfg, jrn := journaledConfig(t)
	s, err := core.SpawnProgram(cfg, "slow", func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, "part")
		blockForever(stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.ExpectTimeout(300*time.Millisecond, core.Glob("*complete*"), core.TimeoutCase())
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatalf("want timeout, got %+v", r)
	}
	s.Close()
	journal := jrn.Bytes()

	start := time.Now()
	reports, err := RunJournal(journal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("replay waited the recorded timeout out: %v", elapsed)
	}
	if len(reports) != 1 || !reports[0].Clean() {
		t.Fatalf("timeout replay diverged: %v", reports)
	}
}

// An expect that fails with ErrTimeout (no timeout case) is a recorded
// disposition too; replay must reproduce it without reporting divergence.
func TestReplayTimeoutError(t *testing.T) {
	cfg, jrn := journaledConfig(t)
	s, err := core.SpawnProgram(cfg, "mute", func(stdin io.Reader, stdout io.Writer) error {
		blockForever(stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExpectTimeout(50*time.Millisecond, core.Glob("*never*")); err == nil {
		t.Fatal("want timeout error")
	}
	s.Close()

	reports, err := RunJournal(jrn.Bytes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || !reports[0].Clean() {
		t.Fatalf("replay diverged: %v", reports)
	}
}

// match_max trimming is part of the observable surface: a journaled
// overflow run must replay its forget events exactly.
func TestReplayMatchMaxOverflow(t *testing.T) {
	cfg, jrn := journaledConfig(t)
	s, err := core.SpawnProgram(cfg, "torrent", func(stdin io.Reader, stdout io.Writer) error {
		stdout.Write(bytes.Repeat([]byte{'a'}, 6000))
		io.WriteString(stdout, "MARKER")
		blockForever(stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetMatchMax(512)
	if _, err := s.ExpectTimeout(10*time.Second, core.Exact("MARKER")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	journal := jrn.Bytes()

	events, err := trace.ParseJSONL(journal)
	if err != nil {
		t.Fatal(err)
	}
	forgets := 0
	for _, e := range events {
		if e.Kind == trace.KindForget.String() {
			forgets++
		}
	}
	if forgets == 0 {
		t.Fatal("overflow run journaled no forget events")
	}
	reports, err := RunJournal(journal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || !reports[0].Clean() {
		t.Fatalf("overflow replay diverged: %v", reports)
	}
}

// Corrupting one journal event must be REPORTED by the replayer, never
// absorbed: a flipped read byte, a wrong match index, and a flipped
// attempt verdict each produce a divergence anchored at a seq.
func TestReplayMutationReported(t *testing.T) {
	cfg, jrn := journaledConfig(t)
	journal := runLoginDialogue(t, cfg, jrn)

	mutate := func(t *testing.T, f func(events []trace.EventJSON) bool) {
		t.Helper()
		events, err := trace.ParseJSONL(journal)
		if err != nil {
			t.Fatal(err)
		}
		if !f(events) {
			t.Fatal("mutation found no target event")
		}
		reports, err := RunJournal(trace.MarshalJSONL(events), Options{})
		if err != nil {
			// Structural rejection is also loud reporting.
			return
		}
		for _, rep := range reports {
			if !rep.Clean() {
				if rep.Divergences[0].Seq == 0 {
					t.Fatalf("divergence not anchored: %s", rep)
				}
				return
			}
		}
		t.Fatalf("mutation silently absorbed: %v", reports)
	}

	t.Run("read-payload-byte", func(t *testing.T) {
		mutate(t, func(events []trace.EventJSON) bool {
			for i := range events {
				if events[i].Kind == trace.KindRead.String() && len(events[i].Data) > 0 {
					events[i].Data[0] ^= 0x01
					return true
				}
			}
			return false
		})
	})
	t.Run("match-case-index", func(t *testing.T) {
		mutate(t, func(events []trace.EventJSON) bool {
			for i := range events {
				if events[i].Kind == trace.KindMatch.String() {
					events[i].A += 7
					return true
				}
			}
			return false
		})
	})
	t.Run("attempt-verdict", func(t *testing.T) {
		mutate(t, func(events []trace.EventJSON) bool {
			for i := range events {
				if events[i].Kind == trace.KindAttempt.String() && !events[i].OK {
					events[i].OK = true
					return true
				}
			}
			return false
		})
	})
	t.Run("dropped-read", func(t *testing.T) {
		mutate(t, func(events []trace.EventJSON) bool {
			for i := range events {
				if events[i].Kind == trace.KindRead.String() {
					copy(events[i:], events[i+1:])
					return true
				}
			}
			return false
		})
	})
}

// A ring-only dump (previews, no payloads) must be rejected as
// unreplayable, not silently replayed short.
func TestReplayRejectsRingDump(t *testing.T) {
	rec := trace.New(0)
	rec.SetRecording(true)
	cfg := &core.Config{Rec: rec, SID: 1}
	s, err := core.SpawnProgram(cfg, "p", func(stdin io.Reader, stdout io.Writer) error {
		io.WriteString(stdout, strings.Repeat("x", 300)+"done")
		blockForever(stdin)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExpectTimeout(5*time.Second, core.Exact("done")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := RunJournal(rec.Dump(0), Options{}); err == nil {
		t.Fatal("ring dump accepted as a journal")
	}
}

// Replays are deterministic: replaying the same journal repeatedly yields
// byte-identical normalized observables.
func TestReplayIdempotent(t *testing.T) {
	cfg, jrn := journaledConfig(t)
	journal := runLoginDialogue(t, cfg, jrn)

	var prev []byte
	for i := 0; i < 3; i++ {
		reports, err := RunJournal(journal, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != 1 || !reports[0].Clean() {
			t.Fatalf("round %d diverged: %v", i, reports)
		}
		events, err := trace.ParseJSONL(reports[0].ReplayJournal)
		if err != nil {
			t.Fatal(err)
		}
		norm, _ := Normalize(events, 1)
		b := trace.MarshalJSONL(norm)
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatalf("replay %d produced different observables", i)
		}
		prev = b
	}
}
