package tcl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The eval cache must be invisible: every script and expression behaves
// identically with caching on (the default) and off. These tests pin the
// invalidation story (proc redefinition, rename) and the error-timing
// subtleties (fail-soft parse errors, bracket return), then cross-check the
// two evaluators over randomized scripts.

func newUncached() *Interp {
	i := New()
	i.SetEvalCacheSize(0)
	return i
}

func TestProcRedefinitionNeverStale(t *testing.T) {
	i := New()
	if _, err := i.Eval("proc greet {} {return hello}"); err != nil {
		t.Fatal(err)
	}
	// Evaluate twice so the body is compiled and cached.
	for k := 0; k < 2; k++ {
		if out, err := i.Eval("greet"); err != nil || out != "hello" {
			t.Fatalf("call %d: %q, %v", k, out, err)
		}
	}
	if _, err := i.Eval("proc greet {} {return goodbye}"); err != nil {
		t.Fatal(err)
	}
	if out, err := i.Eval("greet"); err != nil || out != "goodbye" {
		t.Fatalf("after redefinition: %q, %v (stale body served?)", out, err)
	}
}

func TestRenameNeverServesStaleDispatch(t *testing.T) {
	i := New()
	script := "proc a {} {return ay}\nproc b {} {return bee}"
	if _, err := i.Eval(script); err != nil {
		t.Fatal(err)
	}
	// Warm the cache on the call sites themselves.
	if out, _ := i.Eval("a"); out != "ay" {
		t.Fatalf("a = %q", out)
	}
	if _, err := i.Eval("rename b c"); err != nil {
		t.Fatal(err)
	}
	if _, err := i.Eval("rename a b"); err != nil {
		t.Fatal(err)
	}
	// The same cached call-site text must now dispatch to the moved procs.
	if out, err := i.Eval("b"); err != nil || out != "ay" {
		t.Fatalf("b after rename: %q, %v", out, err)
	}
	if out, err := i.Eval("c"); err != nil || out != "bee" {
		t.Fatalf("c after rename: %q, %v", out, err)
	}
	if _, err := i.Eval("a"); err == nil ||
		!strings.Contains(err.Error(), "invalid command name") {
		t.Fatalf("a after rename: want invalid command name, got %v", err)
	}
}

func TestLoopBodyHitsCache(t *testing.T) {
	i := New()
	if _, err := i.Eval("set n 0\nwhile {$n < 50} {set n [expr {$n + 1}]}"); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := i.EvalCacheStats()
	if hits < 40 {
		t.Errorf("loop body should hit the cache, got hits=%d misses=%d", hits, misses)
	}
}

func TestCacheDisabledRestoresLegacyPath(t *testing.T) {
	i := newUncached()
	if out, err := i.Eval("set x 5; expr {$x * 2}"); err != nil || out != "10" {
		t.Fatalf("uncached eval: %q, %v", out, err)
	}
	if hits, misses, evicted := i.EvalCacheStats(); hits+misses+evicted != 0 {
		t.Errorf("disabled cache reported stats %d/%d/%d", hits, misses, evicted)
	}
}

func TestCacheBoundIsRespected(t *testing.T) {
	i := New()
	i.SetEvalCacheSize(4)
	for k := 0; k < 32; k++ {
		if _, err := i.Eval(fmt.Sprintf("set v%d %d", k, k)); err != nil {
			t.Fatal(err)
		}
	}
	if n := i.evalCache.Len(); n > 4 {
		t.Errorf("cache holds %d entries, bound is 4", n)
	}
	if _, _, evicted := i.EvalCacheStats(); evicted == 0 {
		t.Error("expected evictions past the bound")
	}
}

// failSoft pins the classic parse-as-you-evaluate timing: commands before a
// parse error run; the error surfaces only when evaluation reaches it.
func TestFailSoftParseErrorTiming(t *testing.T) {
	cases := []struct {
		script  string
		wantErr string
		check   func(i *Interp) error
	}{
		{
			script:  "set y 1\nset bad {unclosed",
			wantErr: "missing close-brace",
			check: func(i *Interp) error {
				if v, _ := i.GetVar("y"); v != "1" {
					return fmt.Errorf("y = %q, prefix did not run", v)
				}
				return nil
			},
		},
		{
			script:  "set x [set y 2; set bad {unclosed",
			wantErr: "missing close-brace",
			check: func(i *Interp) error {
				if v, _ := i.GetVar("y"); v != "2" {
					return fmt.Errorf("y = %q, nested prefix did not run", v)
				}
				return nil
			},
		},
		{
			script:  "set x [set y 3",
			wantErr: "missing close-bracket",
			check: func(i *Interp) error {
				if v, _ := i.GetVar("y"); v != "3" {
					return fmt.Errorf("y = %q, unclosed bracket prefix did not run", v)
				}
				return nil
			},
		},
	}
	for _, mode := range []string{"cached", "uncached"} {
		for _, tc := range cases {
			i := New()
			if mode == "uncached" {
				i.SetEvalCacheSize(0)
			}
			_, err := i.Eval(tc.script)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s %q: err = %v, want %q", mode, tc.script, err, tc.wantErr)
				continue
			}
			if cerr := tc.check(i); cerr != nil {
				t.Errorf("%s %q: %v", mode, tc.script, cerr)
			}
		}
	}
}

func TestBracketReturnPosition(t *testing.T) {
	cases := []struct {
		script  string
		want    string
		wantErr string
	}{
		{script: "set x [return 5]", want: "5"},
		{script: "set x [return 5;]", want: "5"},
		{script: "set x [return 5\n]", want: "5"},
		{script: "set x [return 5; more]", wantErr: "missing close-bracket"},
		{script: "set x [return 5; ]", wantErr: "missing close-bracket"},
	}
	for _, mode := range []string{"cached", "uncached"} {
		for _, tc := range cases {
			i := New()
			if mode == "uncached" {
				i.SetEvalCacheSize(0)
			}
			out, err := i.Eval(tc.script)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Errorf("%s %q: err = %v, want %q", mode, tc.script, err, tc.wantErr)
				}
				continue
			}
			if err != nil || out != tc.want {
				t.Errorf("%s %q: %q, %v", mode, tc.script, out, err)
			}
		}
	}
}

// snapshot captures the observable outcome of a script: the completion
// code/value plus every global scalar, so side-effect divergence between
// the two evaluators is caught, not just result divergence.
func snapshot(i *Interp, res Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "code=%d value=%q\n", res.Code, res.Value)
	for name, v := range i.frames[0].vars {
		tv := v.target()
		if tv.isArr {
			for k, val := range tv.arr {
				fmt.Fprintf(&sb, "arr %s(%s)=%q\n", name, k, val)
			}
		} else {
			fmt.Fprintf(&sb, "var %s=%q\n", name, tv.value)
		}
	}
	// Map iteration order is random; normalize.
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	head, tail := lines[0], lines[1:]
	sortStrings(tail)
	return head + "\n" + strings.Join(tail, "\n")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// randomScript builds scripts from constructs that exercise every segment
// kind and error path: literals, variables, arrays, brackets, quoting,
// procs, loops, expr, and deliberately broken syntax.
func randomScript(rng *rand.Rand) string {
	pieces := []func() string{
		func() string { return fmt.Sprintf("set a%d %d", rng.Intn(4), rng.Intn(100)) },
		func() string { return fmt.Sprintf("set arr(k%d) v%d", rng.Intn(3), rng.Intn(10)) },
		func() string { return fmt.Sprintf("set b \"val $a%d end\"", rng.Intn(4)) },
		func() string { return fmt.Sprintf("set c [expr {$a%d + %d}]", rng.Intn(4), rng.Intn(9)) },
		func() string { return fmt.Sprintf("set d $arr(k%d)", rng.Intn(3)) },
		func() string { return fmt.Sprintf("append b _%d", rng.Intn(10)) },
		func() string {
			return fmt.Sprintf("proc p%d {x} {return [expr {$x * %d}]}", rng.Intn(3), rng.Intn(5)+1)
		},
		func() string { return fmt.Sprintf("set e [p%d %d]", rng.Intn(3), rng.Intn(20)) },
		func() string {
			return fmt.Sprintf("set i 0\nwhile {$i < %d} {set i [expr {$i + 1}]}", rng.Intn(6)+1)
		},
		func() string {
			return fmt.Sprintf("if {$a%d > 50} {set f big} else {set f small}", rng.Intn(4))
		},
		func() string { return fmt.Sprintf("foreach w {x y z} {set g$w %d}", rng.Intn(9)) },
		func() string { return "set h [string length $b]" },
		func() string { return "# a comment line" },
		func() string { return fmt.Sprintf("set j {braced %d literal}", rng.Intn(9)) },
		func() string { return fmt.Sprintf("set k \\%d\\t", rng.Intn(8)) },
		// Error producers — both evaluators must fail identically.
		func() string { return "set bad {unclosed" },
		func() string { return "set bad [nosuchcmd 1 2" },
		func() string { return "set bad $nosuchvar" },
		func() string { return "nosuchcmd" },
		func() string { return "set bad \"unclosed" },
		func() string { return "set x [return 7; extra]" },
	}
	n := rng.Intn(6) + 1
	var sb strings.Builder
	for k := 0; k < n; k++ {
		if k > 0 {
			if rng.Intn(2) == 0 {
				sb.WriteString("\n")
			} else {
				sb.WriteString("; ")
			}
		}
		sb.WriteString(pieces[rng.Intn(len(pieces))]())
	}
	return sb.String()
}

// TestCachedUncachedEquivalenceFuzz cross-checks the compiled evaluator
// against the classic parse-as-you-evaluate path over randomized scripts:
// identical completion codes, values, and global variable state. Scripts
// are seeded so every interp starts with the referenced variables defined,
// then each random script runs on both modes.
func TestCachedUncachedEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const seedScript = "set a0 1; set a1 2; set a2 3; set a3 77; set b seed; " +
		"set arr(k0) z0; set arr(k1) z1; set arr(k2) z2; " +
		"proc p0 {x} {return $x}; proc p1 {x} {return [expr {$x+1}]}; proc p2 {x} {return [expr {$x*2}]}"
	for iter := 0; iter < 400; iter++ {
		script := randomScript(rng)
		cached := New()
		uncached := newUncached()
		for _, i := range []*Interp{cached, uncached} {
			if _, err := i.Eval(seedScript); err != nil {
				t.Fatalf("seed: %v", err)
			}
		}
		// Evaluate twice on the cached interp so the second pass replays
		// from cache — the path that must not diverge.
		resC := cached.EvalScript(script)
		resC2 := cached.EvalScript(script)
		resU := uncached.EvalScript(script)
		resU2 := uncached.EvalScript(script)
		if resC2 != resU2 {
			t.Fatalf("iter %d: second-pass results diverge\nscript:\n%s\ncached:   %+v\nuncached: %+v",
				iter, script, resC2, resU2)
		}
		if resC != resU {
			t.Fatalf("iter %d: first-pass results diverge\nscript:\n%s\ncached:   %+v\nuncached: %+v",
				iter, script, resC, resU)
		}
		sc, su := snapshot(cached, resC2), snapshot(uncached, resU2)
		if sc != su {
			t.Fatalf("iter %d: state diverges\nscript:\n%s\ncached:\n%s\nuncached:\n%s",
				iter, script, sc, su)
		}
	}
}

// randomExpr builds expressions covering every operator level, laziness,
// and the error paths that must match between AST and re-parse evaluation.
func randomExpr(rng *rand.Rand) string {
	atoms := []string{
		"1", "2", "0", "-3", "4.5", "0x1f", "$a", "$b", "$f", "$arr(k)",
		"\"str $a\"", "{word}", "[expr {$a+1}]", "abs(-4)", "int(7.9)",
		"round(2.5)", "double(3)", "true", "no", "$nosuchvar", "1/0",
		"nosuchfunc(1)", "9 %", "(", "~2.5",
	}
	ops := []string{"+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=",
		"&&", "||", "<<", ">>", "&", "|", "^"}
	var sb strings.Builder
	n := rng.Intn(4) + 1
	for k := 0; k < n; k++ {
		if k > 0 {
			sb.WriteString(" " + ops[rng.Intn(len(ops))] + " ")
		}
		if rng.Intn(8) == 0 {
			sb.WriteString("!")
		}
		sb.WriteString(atoms[rng.Intn(len(atoms))])
	}
	if rng.Intn(5) == 0 {
		return "(" + sb.String() + ") ? $a : $b"
	}
	return sb.String()
}

func TestExprASTEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const seed = "set a 5; set b 2; set f 1.5; set arr(k) 9"
	cached := New()
	uncached := newUncached()
	for _, i := range []*Interp{cached, uncached} {
		if _, err := i.Eval(seed); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	for iter := 0; iter < 600; iter++ {
		expr := randomExpr(rng)
		// Two passes on the cached side: miss then hit.
		c1, r1 := cached.ExprString(expr)
		c2, r2 := cached.ExprString(expr)
		u, ru := uncached.ExprString(expr)
		if c1 != c2 || r1 != r2 {
			t.Fatalf("iter %d: cache hit diverges from miss for %q: (%q,%+v) vs (%q,%+v)",
				iter, expr, c1, r1, c2, r2)
		}
		if c1 != u || r1 != ru {
			t.Fatalf("iter %d: AST diverges from re-parse for %q:\nAST:      (%q, %+v)\nre-parse: (%q, %+v)",
				iter, expr, c1, r1, u, ru)
		}
	}
}

func TestExprLazinessCached(t *testing.T) {
	// The canonical laziness cases must hold on the cached path too,
	// including on a cache hit.
	i := New()
	for pass := 0; pass < 2; pass++ {
		if out, err := i.Eval("expr {1 || $nosuchvar}"); err != nil || out != "1" {
			t.Fatalf("pass %d: || laziness: %q, %v", pass, out, err)
		}
		if out, err := i.Eval("expr {0 && [nosuchcmd]}"); err != nil || out != "0" {
			t.Fatalf("pass %d: && laziness: %q, %v", pass, out, err)
		}
		if out, err := i.Eval("expr {1 ? 10 : $nosuchvar}"); err != nil || out != "10" {
			t.Fatalf("pass %d: ?: laziness: %q, %v", pass, out, err)
		}
		if out, err := i.Eval("expr {0 || nosuchfunc(1) < 2}"); err == nil {
			t.Fatalf("pass %d: taken unknown func should error, got %q", pass, out)
		}
		if out, err := i.Eval("expr {1 || nosuchfunc(1) < 2}"); err != nil || out != "1" {
			t.Fatalf("pass %d: untaken unknown func: %q, %v", pass, out, err)
		}
	}
}

// TestQuotedSideEffectsRunUntaken pins an obscure corner both evaluators
// share: quoted strings substitute even on untaken lazy sides (for strings,
// parsing is substitution), while brackets and variables are skipped.
func TestQuotedSideEffectsRunUntaken(t *testing.T) {
	for _, mode := range []string{"cached", "uncached"} {
		i := New()
		if mode == "uncached" {
			i.SetEvalCacheSize(0)
		}
		if _, err := i.Eval(`expr {1 || "[set touched 1]"}`); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if v, ok := i.GetVar("touched"); !ok || v != "1" {
			t.Errorf("%s: quoted substitution on untaken side did not run (touched=%q ok=%v)",
				mode, v, ok)
		}
	}
}
