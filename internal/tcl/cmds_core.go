package tcl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// registerCoreCommands installs variables, control flow, procedures,
// expression evaluation, and error handling.
func registerCoreCommands(i *Interp) {
	i.Register("set", cmdSet)
	i.Register("unset", cmdUnset)
	i.Register("incr", cmdIncr)
	i.Register("append", cmdAppend)
	i.Register("expr", cmdExpr)
	i.Register("if", cmdIf)
	i.Register("while", cmdWhile)
	i.Register("for", cmdFor)
	i.Register("foreach", cmdForeach)
	i.Register("break", cmdBreak)
	i.Register("continue", cmdContinue)
	i.Register("return", cmdReturn)
	i.Register("proc", cmdProc)
	i.Register("rename", cmdRename)
	i.Register("catch", cmdCatch)
	i.Register("error", cmdError)
	i.Register("eval", cmdEval)
	i.Register("uplevel", cmdUplevel)
	i.Register("upvar", cmdUpvar)
	i.Register("global", cmdGlobal)
	i.Register("switch", cmdSwitch)
	i.Register("case", cmdCase)
	i.Register("info", cmdInfo)
	i.Register("array", cmdArray)
	i.Register("subst", cmdSubst)
}

func arity(args []string, min, max int, usage string) Result {
	n := len(args) - 1
	if n < min || (max >= 0 && n > max) {
		return Errf(`wrong # args: should be "%s %s"`, args[0], usage)
	}
	return Ok("")
}

func cmdSet(i *Interp, args []string) Result {
	if r := arity(args, 1, 2, "varName ?newValue?"); r.Code != OK {
		return r
	}
	if len(args) == 2 {
		v, ok := i.GetVar(args[1])
		if !ok {
			return Errf("can't read %q: no such variable", args[1])
		}
		return Ok(v)
	}
	return Ok(i.SetVar(args[1], args[2]))
}

func cmdUnset(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "varName ?varName ...?"); r.Code != OK {
		return r
	}
	for _, name := range args[1:] {
		if !i.UnsetVar(name) {
			return Errf("can't unset %q: no such variable", name)
		}
	}
	return Ok("")
}

func cmdIncr(i *Interp, args []string) Result {
	if r := arity(args, 1, 2, "varName ?increment?"); r.Code != OK {
		return r
	}
	cur, ok := i.GetVar(args[1])
	if !ok {
		return Errf("can't read %q: no such variable", args[1])
	}
	n, err := strconv.ParseInt(strings.TrimSpace(cur), 0, 64)
	if err != nil {
		return Errf("expected integer but got %q", cur)
	}
	delta := int64(1)
	if len(args) == 3 {
		delta, err = strconv.ParseInt(strings.TrimSpace(args[2]), 0, 64)
		if err != nil {
			return Errf("expected integer but got %q", args[2])
		}
	}
	return Ok(i.SetVar(args[1], strconv.FormatInt(n+delta, 10)))
}

func cmdAppend(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "varName ?value value ...?"); r.Code != OK {
		return r
	}
	cur, _ := i.GetVar(args[1])
	var sb strings.Builder
	sb.WriteString(cur)
	for _, v := range args[2:] {
		sb.WriteString(v)
	}
	return Ok(i.SetVar(args[1], sb.String()))
}

func cmdExpr(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "arg ?arg ...?"); r.Code != OK {
		return r
	}
	text := strings.Join(args[1:], " ")
	s, res := i.ExprString(text)
	if res.Code != OK {
		return res
	}
	return Ok(s)
}

// cmdIf implements if with optional then/else/elseif noise words, per Tcl.
func cmdIf(i *Interp, args []string) Result {
	a := args[1:]
	for {
		if len(a) == 0 {
			return Errf(`wrong # args: no expression after "if" argument`)
		}
		cond := a[0]
		a = a[1:]
		if len(a) > 0 && a[0] == "then" {
			a = a[1:]
		}
		if len(a) == 0 {
			return Errf(`wrong # args: no script following "if" condition`)
		}
		body := a[0]
		a = a[1:]
		b, res := i.ExprBool(cond)
		if res.Code != OK {
			return res
		}
		if b {
			return i.EvalScript(body)
		}
		if len(a) == 0 {
			return Ok("")
		}
		switch a[0] {
		case "elseif":
			a = a[1:]
			continue
		case "else":
			a = a[1:]
			if len(a) != 1 {
				return Errf(`wrong # args: extra arguments after "else" clause`)
			}
			return i.EvalScript(a[0])
		default:
			if len(a) == 1 {
				// Bare else body, old-Tcl style: if cond body elsebody.
				return i.EvalScript(a[0])
			}
			return Errf(`invalid "if" argument %q`, a[0])
		}
	}
}

func cmdWhile(i *Interp, args []string) Result {
	if r := arity(args, 2, 2, "test command"); r.Code != OK {
		return r
	}
	for {
		b, res := i.ExprBool(args[1])
		if res.Code != OK {
			return res
		}
		if !b {
			return Ok("")
		}
		res2 := i.EvalScript(args[2])
		switch res2.Code {
		case OK, Continue:
		case Break:
			return Ok("")
		default:
			return res2
		}
	}
}

func cmdFor(i *Interp, args []string) Result {
	if r := arity(args, 4, 4, "start test next command"); r.Code != OK {
		return r
	}
	if res := i.EvalScript(args[1]); res.Code != OK {
		return res
	}
	for {
		// An empty test is true, matching `for {} {1} {} {...}` and the
		// paper's `for {} 1 {} {...}` spelling.
		if strings.TrimSpace(args[2]) != "" {
			b, res := i.ExprBool(args[2])
			if res.Code != OK {
				return res
			}
			if !b {
				return Ok("")
			}
		}
		res := i.EvalScript(args[4])
		switch res.Code {
		case OK, Continue:
		case Break:
			return Ok("")
		default:
			return res
		}
		if res := i.EvalScript(args[3]); res.Code != OK {
			return res
		}
	}
}

func cmdForeach(i *Interp, args []string) Result {
	if r := arity(args, 3, 3, "varName list command"); r.Code != OK {
		return r
	}
	items, err := ParseList(args[2])
	if err != nil {
		return Errf("%v", err)
	}
	for _, item := range items {
		i.SetVar(args[1], item)
		res := i.EvalScript(args[3])
		switch res.Code {
		case OK, Continue:
		case Break:
			return Ok("")
		default:
			return res
		}
	}
	return Ok("")
}

func cmdBreak(i *Interp, args []string) Result {
	if r := arity(args, 0, 0, ""); r.Code != OK {
		return r
	}
	return Result{Break, ""}
}

func cmdContinue(i *Interp, args []string) Result {
	if r := arity(args, 0, 0, ""); r.Code != OK {
		return r
	}
	return Result{Continue, ""}
}

func cmdReturn(i *Interp, args []string) Result {
	if r := arity(args, 0, 1, "?value?"); r.Code != OK {
		return r
	}
	val := ""
	if len(args) == 2 {
		val = args[1]
	}
	return Result{Return, val}
}

func cmdProc(i *Interp, args []string) Result {
	if r := arity(args, 3, 3, "name args body"); r.Code != OK {
		return r
	}
	formals, err := ParseList(args[2])
	if err != nil {
		return Errf("%v", err)
	}
	p := &Proc{Body: args[3]}
	for _, f := range formals {
		parts, err := ParseList(f)
		if err != nil || len(parts) == 0 || len(parts) > 2 {
			return Errf("procedure %q has argument with bad format: %q", args[1], f)
		}
		arg := ProcArg{Name: parts[0]}
		if len(parts) == 2 {
			arg.Default = parts[1]
			arg.HasDefault = true
		}
		p.Args = append(p.Args, arg)
	}
	i.procs[args[1]] = p
	i.cmdEpoch++
	return Ok("")
}

func cmdRename(i *Interp, args []string) Result {
	if r := arity(args, 2, 2, "oldName newName"); r.Code != OK {
		return r
	}
	old, nw := args[1], args[2]
	if p, ok := i.procs[old]; ok {
		delete(i.procs, old)
		if nw != "" {
			i.procs[nw] = p
		}
		i.cmdEpoch++
		return Ok("")
	}
	if c, ok := i.commands[old]; ok {
		delete(i.commands, old)
		if nw != "" {
			i.commands[nw] = c
		}
		i.cmdEpoch++
		return Ok("")
	}
	return Errf("can't rename %q: command doesn't exist", old)
}

func cmdCatch(i *Interp, args []string) Result {
	if r := arity(args, 1, 2, "command ?varName?"); r.Code != OK {
		return r
	}
	res := i.EvalScript(args[1])
	if len(args) == 3 {
		i.SetVar(args[2], res.Value)
	}
	return Ok(strconv.Itoa(int(res.Code)))
}

func cmdError(i *Interp, args []string) Result {
	if r := arity(args, 1, 2, "message ?errorInfo?"); r.Code != OK {
		return r
	}
	if len(args) == 3 {
		i.ErrorInfo = args[2]
	}
	return Result{Error, args[1]}
}

func cmdEval(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "arg ?arg ...?"); r.Code != OK {
		return r
	}
	return i.EvalScript(strings.Join(args[1:], " "))
}

func cmdUplevel(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "?level? command ?command ...?"); r.Code != OK {
		return r
	}
	rest := args[1:]
	target := len(i.frames) - 2 // default: one level up
	if lvl, ok := parseLevel(rest[0], len(i.frames)-1); ok && len(rest) > 1 {
		target = lvl
		rest = rest[1:]
	}
	if target < 0 || target >= len(i.frames) {
		return Errf("bad level %q", args[1])
	}
	saved := i.frames
	i.frames = i.frames[:target+1]
	res := i.EvalScript(strings.Join(rest, " "))
	i.frames = saved
	return res
}

// parseLevel parses "#n" (absolute) or "n" (relative) level specifiers.
func parseLevel(s string, cur int) (int, bool) {
	if strings.HasPrefix(s, "#") {
		n, err := strconv.Atoi(s[1:])
		if err != nil {
			return 0, false
		}
		return n, true
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return cur - n, true
}

func cmdUpvar(i *Interp, args []string) Result {
	if r := arity(args, 2, -1, "?level? otherVar localVar ?otherVar localVar ...?"); r.Code != OK {
		return r
	}
	rest := args[1:]
	target := len(i.frames) - 2
	if lvl, ok := parseLevel(rest[0], len(i.frames)-1); ok && len(rest)%2 == 1 {
		target = lvl
		rest = rest[1:]
	}
	if target < 0 || target >= len(i.frames) {
		return Errf("bad level for upvar")
	}
	if len(rest)%2 != 0 {
		return Errf(`wrong # args: should be "upvar ?level? otherVar localVar ?otherVar localVar ...?"`)
	}
	for k := 0; k < len(rest); k += 2 {
		other, local := rest[k], rest[k+1]
		tf := i.frames[target]
		v, ok := tf.vars[other]
		if !ok {
			v = &variable{}
			tf.vars[other] = v
		}
		i.linkVar(local, v.target())
	}
	return Ok("")
}

func cmdGlobal(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "varName ?varName ...?"); r.Code != OK {
		return r
	}
	if i.Level() == 0 {
		return Ok("") // already global
	}
	gf := i.frames[0]
	for _, name := range args[1:] {
		v, ok := gf.vars[name]
		if !ok {
			v = &variable{}
			gf.vars[name] = v
		}
		i.linkVar(name, v.target())
	}
	return Ok("")
}

// cmdSwitch implements modern switch: switch ?-exact|-glob|-regexp? ?--?
// string pattern body ?pattern body ...? or the single-list form.
func cmdSwitch(i *Interp, args []string) Result {
	a := args[1:]
	mode := "-exact"
	for len(a) > 0 && strings.HasPrefix(a[0], "-") {
		switch a[0] {
		case "-exact", "-glob", "-regexp":
			mode = a[0]
			a = a[1:]
		case "--":
			a = a[1:]
			goto parsed
		default:
			return Errf("bad option %q: should be -exact, -glob, -regexp, or --", a[0])
		}
	}
parsed:
	if len(a) < 2 {
		return Errf(`wrong # args: should be "switch ?options? string pattern body ... ?default body?"`)
	}
	str := a[0]
	pairs := a[1:]
	if len(pairs) == 1 {
		items, err := ParseList(pairs[0])
		if err != nil {
			return Errf("%v", err)
		}
		pairs = items
	}
	if len(pairs)%2 != 0 {
		return Errf("extra switch pattern with no body")
	}
	for k := 0; k < len(pairs); k += 2 {
		pat, body := pairs[k], pairs[k+1]
		matched := pat == "default" && k == len(pairs)-2
		if !matched {
			switch mode {
			case "-exact":
				matched = pat == str
			case "-glob":
				matched = GlobMatch(pat, str)
			case "-regexp":
				m, err := regexpMatch(pat, str)
				if err != nil {
					return Errf("%v", err)
				}
				matched = m
			}
		}
		if matched {
			// "-" chains to the next body.
			for body == "-" {
				k += 2
				if k >= len(pairs) {
					return Errf(`no body specified for pattern %q`, pat)
				}
				body = pairs[k+1]
			}
			return i.EvalScript(body)
		}
	}
	return Ok("")
}

// cmdCase implements the old Tcl case command the paper mentions:
//
//	case string ?in? patList body ?patList body ...?
//
// Each patList is a list of glob patterns; "default" matches anything.
func cmdCase(i *Interp, args []string) Result {
	a := args[1:]
	if len(a) == 0 {
		return Errf(`wrong # args: should be "case string ?in? patList body ...?"`)
	}
	str := a[0]
	a = a[1:]
	if len(a) > 0 && a[0] == "in" {
		a = a[1:]
	}
	if len(a) == 1 {
		items, err := ParseList(a[0])
		if err != nil {
			return Errf("%v", err)
		}
		a = items
	}
	if len(a)%2 != 0 {
		return Errf("extra case pattern with no body")
	}
	var defaultBody string
	hasDefault := false
	for k := 0; k < len(a); k += 2 {
		patList, body := a[k], a[k+1]
		if patList == "default" {
			defaultBody, hasDefault = body, true
			continue
		}
		pats, err := ParseList(patList)
		if err != nil {
			return Errf("%v", err)
		}
		for _, pat := range pats {
			if GlobMatch(pat, str) {
				return i.EvalScript(body)
			}
		}
	}
	if hasDefault {
		return i.EvalScript(defaultBody)
	}
	return Ok("")
}

func cmdInfo(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "option ?arg ...?"); r.Code != OK {
		return r
	}
	switch args[1] {
	case "exists":
		if len(args) != 3 {
			return Errf(`wrong # args: should be "info exists varName"`)
		}
		if _, ok := i.GetVar(args[2]); ok {
			return Ok("1")
		}
		// An array name with no parens still "exists".
		if v, ok := i.lookupVar(args[2]); ok && v.isArr {
			return Ok("1")
		}
		return Ok("0")
	case "commands":
		names := i.CommandNames()
		if len(args) == 3 {
			names = filterGlob(names, args[2])
		}
		return Ok(FormList(names))
	case "procs":
		names := i.ProcNames()
		if len(args) == 3 {
			names = filterGlob(names, args[2])
		}
		return Ok(FormList(names))
	case "vars", "locals":
		var names []string
		for n := range i.current().vars {
			names = append(names, n)
		}
		sort.Strings(names)
		if len(args) == 3 {
			names = filterGlob(names, args[2])
		}
		return Ok(FormList(names))
	case "globals":
		var names []string
		for n := range i.frames[0].vars {
			names = append(names, n)
		}
		sort.Strings(names)
		if len(args) == 3 {
			names = filterGlob(names, args[2])
		}
		return Ok(FormList(names))
	case "body":
		if len(args) != 3 {
			return Errf(`wrong # args: should be "info body procName"`)
		}
		p, ok := i.procs[args[2]]
		if !ok {
			return Errf("%q isn't a procedure", args[2])
		}
		return Ok(p.Body)
	case "args":
		if len(args) != 3 {
			return Errf(`wrong # args: should be "info args procName"`)
		}
		p, ok := i.procs[args[2]]
		if !ok {
			return Errf("%q isn't a procedure", args[2])
		}
		names := make([]string, len(p.Args))
		for k, a := range p.Args {
			names[k] = a.Name
		}
		return Ok(FormList(names))
	case "level":
		if len(args) == 2 {
			return Ok(strconv.Itoa(i.Level()))
		}
		return Errf("info level with argument not supported")
	case "tclversion":
		return Ok("6.0") // the era this dialect reproduces
	default:
		return Errf("bad option %q to info", args[1])
	}
}

func filterGlob(names []string, pat string) []string {
	var out []string
	for _, n := range names {
		if GlobMatch(pat, n) {
			out = append(out, n)
		}
	}
	return out
}

func cmdArray(i *Interp, args []string) Result {
	if r := arity(args, 2, -1, "option arrayName ?arg ...?"); r.Code != OK {
		return r
	}
	v, exists := i.lookupVar(args[2])
	isArr := exists && v.isArr
	switch args[1] {
	case "exists":
		if isArr {
			return Ok("1")
		}
		return Ok("0")
	case "size":
		if !isArr {
			return Ok("0")
		}
		return Ok(strconv.Itoa(len(v.arr)))
	case "names":
		if !isArr {
			return Ok("")
		}
		var names []string
		for n := range v.arr {
			names = append(names, n)
		}
		sort.Strings(names)
		if len(args) == 4 {
			names = filterGlob(names, args[3])
		}
		return Ok(FormList(names))
	case "get":
		if !isArr {
			return Ok("")
		}
		var names []string
		for n := range v.arr {
			names = append(names, n)
		}
		sort.Strings(names)
		var out []string
		for _, n := range names {
			out = append(out, n, v.arr[n])
		}
		return Ok(FormList(out))
	case "set":
		if len(args) != 4 {
			return Errf(`wrong # args: should be "array set arrayName list"`)
		}
		items, err := ParseList(args[3])
		if err != nil {
			return Errf("%v", err)
		}
		if len(items)%2 != 0 {
			return Errf("list must have an even number of elements")
		}
		for k := 0; k < len(items); k += 2 {
			i.SetVar(fmt.Sprintf("%s(%s)", args[2], items[k]), items[k+1])
		}
		return Ok("")
	default:
		return Errf("bad option %q to array", args[1])
	}
}

func cmdSubst(i *Interp, args []string) Result {
	if r := arity(args, 1, 1, "string"); r.Code != OK {
		return r
	}
	out, err := i.Subst(args[1])
	if err != nil {
		return Errf("%v", err)
	}
	return Ok(out)
}
