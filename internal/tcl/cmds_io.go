package tcl

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

func registerIOCommands(i *Interp) {
	i.Register("puts", cmdPuts)
	i.Register("exec", cmdExec)
	i.Register("source", cmdSource)
	i.Register("exit", cmdExit)
	i.Register("pwd", cmdPwd)
	i.Register("cd", cmdCd)
	i.Register("time", cmdTime)
	i.Register("gets", cmdGets)
	i.Register("pid", cmdPid)
}

func cmdPuts(i *Interp, args []string) Result {
	a := args[1:]
	newline := true
	if len(a) > 0 && a[0] == "-nonewline" {
		newline = false
		a = a[1:]
	}
	// Accept the `puts stdout msg` / `puts stderr msg` channel forms.
	w := i.Stdout
	if len(a) == 2 {
		switch a[0] {
		case "stdout":
			a = a[1:]
		case "stderr":
			w = i.Stderr
			a = a[1:]
		default:
			return Errf("can not find channel named %q", a[0])
		}
	}
	if len(a) != 1 {
		return Errf(`wrong # args: should be "puts ?-nonewline? ?channelId? string"`)
	}
	if newline {
		fmt.Fprintln(w, a[0])
	} else {
		fmt.Fprint(w, a[0])
	}
	return Ok("")
}

// cmdExec runs a UNIX program, waits for it, and returns its standard
// output with a single trailing newline removed, like Tcl's exec. This is
// the paper's "UNIX programs may be called" facility (e.g. `exec sleep 4`
// in callback.exp). There is no pipeline syntax; expect spawns interactive
// pipelines itself.
func cmdExec(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "arg ?arg ...?"); r.Code != OK {
		return r
	}
	cmd := exec.Command(args[1], args[2:]...)
	out, err := cmd.Output()
	text := strings.TrimSuffix(string(out), "\n")
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			msg := strings.TrimSpace(string(ee.Stderr))
			if msg == "" {
				msg = fmt.Sprintf("child process exited abnormally (status %d)", ee.ExitCode())
			}
			return Errf("%s", msg)
		}
		return Errf("couldn't execute %q: %v", args[1], err)
	}
	return Ok(text)
}

func cmdSource(i *Interp, args []string) Result {
	if r := arity(args, 1, 1, "fileName"); r.Code != OK {
		return r
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return Errf("couldn't read file %q: %v", args[1], err)
	}
	res := i.EvalScript(string(data))
	if res.Code == Return {
		return Ok(res.Value)
	}
	return res
}

func cmdExit(i *Interp, args []string) Result {
	if r := arity(args, 0, 1, "?returnCode?"); r.Code != OK {
		return r
	}
	code := 0
	if len(args) == 2 {
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return Errf("expected integer but got %q", args[1])
		}
		code = n
	}
	if i.exitHandler != nil {
		i.exitHandler(code)
		// If the handler returns, surface a distinctive error so tests can
		// observe exit without killing the test process.
		return Errf("exit %d", code)
	}
	os.Exit(code)
	return Ok("") // unreachable
}

func cmdPwd(i *Interp, args []string) Result {
	if r := arity(args, 0, 0, ""); r.Code != OK {
		return r
	}
	dir, err := os.Getwd()
	if err != nil {
		return Errf("%v", err)
	}
	return Ok(dir)
}

func cmdCd(i *Interp, args []string) Result {
	if r := arity(args, 0, 1, "?dirName?"); r.Code != OK {
		return r
	}
	dir := os.Getenv("HOME")
	if len(args) == 2 {
		dir = args[1]
	}
	if err := os.Chdir(dir); err != nil {
		return Errf("couldn't change working directory to %q: %v", dir, err)
	}
	return Ok("")
}

// cmdTime evaluates a script count times and reports microseconds per
// iteration, like Tcl's time command.
func cmdTime(i *Interp, args []string) Result {
	if r := arity(args, 1, 2, "command ?count?"); r.Code != OK {
		return r
	}
	count := 1
	if len(args) == 3 {
		n, err := strconv.Atoi(args[2])
		if err != nil || n <= 0 {
			return Errf("expected positive integer but got %q", args[2])
		}
		count = n
	}
	start := time.Now()
	for k := 0; k < count; k++ {
		if res := i.EvalScript(args[1]); res.Code != OK && res.Code != Return {
			return res
		}
	}
	per := time.Since(start).Microseconds() / int64(count)
	return Ok(fmt.Sprintf("%d microseconds per iteration", per))
}

// cmdGets reads one line from standard input: `gets stdin ?varName?`.
func cmdGets(i *Interp, args []string) Result {
	if r := arity(args, 1, 2, "channelId ?varName?"); r.Code != OK {
		return r
	}
	if args[1] != "stdin" {
		return Errf("can not find channel named %q", args[1])
	}
	line, err := readLine(os.Stdin)
	if err != nil {
		if len(args) == 3 {
			i.SetVar(args[2], "")
			return Ok("-1")
		}
		return Errf("error reading stdin: %v", err)
	}
	if len(args) == 3 {
		i.SetVar(args[2], line)
		return Ok(strconv.Itoa(len(line)))
	}
	return Ok(line)
}

func readLine(f *os.File) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 1)
	for {
		n, err := f.Read(buf)
		if n > 0 {
			if buf[0] == '\n' {
				return sb.String(), nil
			}
			sb.WriteByte(buf[0])
		}
		if err != nil {
			if sb.Len() > 0 {
				return sb.String(), nil
			}
			return "", err
		}
	}
}

func cmdPid(i *Interp, args []string) Result {
	if r := arity(args, 0, 0, ""); r.Code != OK {
		return r
	}
	return Ok(strconv.Itoa(os.Getpid()))
}
