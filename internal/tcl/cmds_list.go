package tcl

import (
	"sort"
	"strconv"
	"strings"
)

func registerListCommands(i *Interp) {
	i.Register("list", cmdList)
	i.Register("lindex", cmdLindex)
	i.Register("llength", cmdLlength)
	i.Register("lappend", cmdLappend)
	i.Register("linsert", cmdLinsert)
	i.Register("lrange", cmdLrange)
	i.Register("lreplace", cmdLreplace)
	i.Register("lsearch", cmdLsearch)
	i.Register("lsort", cmdLsort)
	i.Register("concat", cmdConcat)
	i.Register("join", cmdJoin)
	i.Register("split", cmdSplit)
}

// listIndex parses an index that may be "end" or "end-N".
func listIndex(s string, length int) (int, Result) {
	if s == "end" {
		return length - 1, Ok("")
	}
	if strings.HasPrefix(s, "end-") {
		n, err := strconv.Atoi(s[4:])
		if err != nil {
			return 0, Errf("bad index %q", s)
		}
		return length - 1 - n, Ok("")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, Errf("bad index %q: must be integer or end?-integer?", s)
	}
	return n, Ok("")
}

func cmdList(i *Interp, args []string) Result {
	return Ok(FormList(args[1:]))
}

func cmdLindex(i *Interp, args []string) Result {
	if r := arity(args, 2, 2, "list index"); r.Code != OK {
		return r
	}
	items, err := ParseList(args[1])
	if err != nil {
		return Errf("%v", err)
	}
	idx, res := listIndex(args[2], len(items))
	if res.Code != OK {
		return res
	}
	if idx < 0 || idx >= len(items) {
		return Ok("")
	}
	return Ok(items[idx])
}

func cmdLlength(i *Interp, args []string) Result {
	if r := arity(args, 1, 1, "list"); r.Code != OK {
		return r
	}
	items, err := ParseList(args[1])
	if err != nil {
		return Errf("%v", err)
	}
	return Ok(strconv.Itoa(len(items)))
}

func cmdLappend(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "varName ?value value ...?"); r.Code != OK {
		return r
	}
	cur, _ := i.GetVar(args[1])
	var sb strings.Builder
	sb.WriteString(cur)
	for _, v := range args[2:] {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(QuoteElement(v))
	}
	return Ok(i.SetVar(args[1], sb.String()))
}

func cmdLinsert(i *Interp, args []string) Result {
	if r := arity(args, 3, -1, "list index element ?element ...?"); r.Code != OK {
		return r
	}
	items, err := ParseList(args[1])
	if err != nil {
		return Errf("%v", err)
	}
	idx, res := listIndex(args[2], len(items))
	if res.Code != OK {
		return res
	}
	if idx < 0 {
		idx = 0
	}
	if idx > len(items) {
		idx = len(items)
	}
	out := make([]string, 0, len(items)+len(args)-3)
	out = append(out, items[:idx]...)
	out = append(out, args[3:]...)
	out = append(out, items[idx:]...)
	return Ok(FormList(out))
}

func cmdLrange(i *Interp, args []string) Result {
	if r := arity(args, 3, 3, "list first last"); r.Code != OK {
		return r
	}
	items, err := ParseList(args[1])
	if err != nil {
		return Errf("%v", err)
	}
	first, res := listIndex(args[2], len(items))
	if res.Code != OK {
		return res
	}
	last, res := listIndex(args[3], len(items))
	if res.Code != OK {
		return res
	}
	if first < 0 {
		first = 0
	}
	if last >= len(items) {
		last = len(items) - 1
	}
	if first > last {
		return Ok("")
	}
	return Ok(FormList(items[first : last+1]))
}

func cmdLreplace(i *Interp, args []string) Result {
	if r := arity(args, 3, -1, "list first last ?element ...?"); r.Code != OK {
		return r
	}
	items, err := ParseList(args[1])
	if err != nil {
		return Errf("%v", err)
	}
	first, res := listIndex(args[2], len(items))
	if res.Code != OK {
		return res
	}
	last, res := listIndex(args[3], len(items))
	if res.Code != OK {
		return res
	}
	if first < 0 {
		first = 0
	}
	if last >= len(items) {
		last = len(items) - 1
	}
	out := make([]string, 0, len(items))
	out = append(out, items[:first]...)
	out = append(out, args[4:]...)
	if last+1 < len(items) && last >= first-1 {
		out = append(out, items[last+1:]...)
	} else if last < first {
		out = append(out, items[first:]...)
	}
	return Ok(FormList(out))
}

func cmdLsearch(i *Interp, args []string) Result {
	a := args[1:]
	mode := "-glob"
	if len(a) == 3 {
		switch a[0] {
		case "-exact", "-glob", "-regexp":
			mode = a[0]
			a = a[1:]
		default:
			return Errf("bad search mode %q", a[0])
		}
	}
	if len(a) != 2 {
		return Errf(`wrong # args: should be "lsearch ?mode? list pattern"`)
	}
	items, err := ParseList(a[0])
	if err != nil {
		return Errf("%v", err)
	}
	for idx, item := range items {
		var m bool
		switch mode {
		case "-exact":
			m = item == a[1]
		case "-glob":
			m = GlobMatch(a[1], item)
		case "-regexp":
			var err error
			m, err = regexpMatch(a[1], item)
			if err != nil {
				return Errf("%v", err)
			}
		}
		if m {
			return Ok(strconv.Itoa(idx))
		}
	}
	return Ok("-1")
}

func cmdLsort(i *Interp, args []string) Result {
	a := args[1:]
	mode := "-ascii"
	decreasing := false
	for len(a) > 1 {
		switch a[0] {
		case "-ascii", "-integer", "-real":
			mode = a[0]
		case "-increasing":
			decreasing = false
		case "-decreasing":
			decreasing = true
		default:
			return Errf("bad option %q to lsort", a[0])
		}
		a = a[1:]
	}
	if len(a) != 1 {
		return Errf(`wrong # args: should be "lsort ?options? list"`)
	}
	items, err := ParseList(a[0])
	if err != nil {
		return Errf("%v", err)
	}
	var sortErr Result = Ok("")
	less := func(x, y string) bool { return x < y }
	switch mode {
	case "-integer":
		less = func(x, y string) bool {
			xi, err1 := strconv.ParseInt(strings.TrimSpace(x), 0, 64)
			yi, err2 := strconv.ParseInt(strings.TrimSpace(y), 0, 64)
			if err1 != nil || err2 != nil {
				sortErr = Errf("expected integer in lsort -integer")
			}
			return xi < yi
		}
	case "-real":
		less = func(x, y string) bool {
			xf, err1 := strconv.ParseFloat(strings.TrimSpace(x), 64)
			yf, err2 := strconv.ParseFloat(strings.TrimSpace(y), 64)
			if err1 != nil || err2 != nil {
				sortErr = Errf("expected real in lsort -real")
			}
			return xf < yf
		}
	}
	sort.SliceStable(items, func(x, y int) bool {
		if decreasing {
			return less(items[y], items[x])
		}
		return less(items[x], items[y])
	})
	if sortErr.Code != OK {
		return sortErr
	}
	return Ok(FormList(items))
}

func cmdConcat(i *Interp, args []string) Result {
	var parts []string
	for _, a := range args[1:] {
		t := strings.TrimSpace(a)
		if t != "" {
			parts = append(parts, t)
		}
	}
	return Ok(strings.Join(parts, " "))
}

func cmdJoin(i *Interp, args []string) Result {
	if r := arity(args, 1, 2, "list ?joinString?"); r.Code != OK {
		return r
	}
	sep := " "
	if len(args) == 3 {
		sep = args[2]
	}
	items, err := ParseList(args[1])
	if err != nil {
		return Errf("%v", err)
	}
	return Ok(strings.Join(items, sep))
}

func cmdSplit(i *Interp, args []string) Result {
	if r := arity(args, 1, 2, "string ?splitChars?"); r.Code != OK {
		return r
	}
	chars := " \t\n\r"
	if len(args) == 3 {
		chars = args[2]
	}
	s := args[1]
	if chars == "" {
		// Split into individual characters.
		out := make([]string, len(s))
		for k := 0; k < len(s); k++ {
			out[k] = string(s[k])
		}
		return Ok(FormList(out))
	}
	var out []string
	start := 0
	for k := 0; k < len(s); k++ {
		if strings.IndexByte(chars, s[k]) >= 0 {
			out = append(out, s[start:k])
			start = k + 1
		}
	}
	out = append(out, s[start:])
	return Ok(FormList(out))
}
