package tcl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pattern"
)

// GlobMatch is the glob matcher used by string match, case, switch -glob,
// and info filters. It shares the expect engine's matcher so the language
// and the dialogue engine agree on pattern semantics.
func GlobMatch(pat, s string) bool { return pattern.Match(pat, s) }

func regexpMatch(pat, s string) (bool, error) {
	re, err := pattern.CompileRegexp(pat)
	if err != nil {
		return false, err
	}
	return re.MatchString(s), nil
}

func registerStringCommands(i *Interp) {
	i.Register("string", cmdString)
	i.Register("format", cmdFormat)
	i.Register("scan", cmdScan)
	i.Register("regexp", cmdRegexp)
	i.Register("regsub", cmdRegsub)
}

func cmdString(i *Interp, args []string) Result {
	if r := arity(args, 2, -1, "option arg ?arg ...?"); r.Code != OK {
		return r
	}
	op := args[1]
	need := func(n int, usage string) Result {
		if len(args)-2 != n {
			return Errf(`wrong # args: should be "string %s %s"`, op, usage)
		}
		return Ok("")
	}
	switch op {
	case "length":
		if r := need(1, "string"); r.Code != OK {
			return r
		}
		return Ok(strconv.Itoa(len(args[2])))
	case "index":
		if r := need(2, "string charIndex"); r.Code != OK {
			return r
		}
		idx, err := strconv.Atoi(args[3])
		if err != nil {
			return Errf("expected integer but got %q", args[3])
		}
		s := args[2]
		if idx < 0 || idx >= len(s) {
			return Ok("")
		}
		return Ok(string(s[idx]))
	case "range":
		if r := need(3, "string first last"); r.Code != OK {
			return r
		}
		s := args[2]
		first, err := strconv.Atoi(args[3])
		if err != nil {
			return Errf("expected integer but got %q", args[3])
		}
		var last int
		if args[4] == "end" {
			last = len(s) - 1
		} else {
			last, err = strconv.Atoi(args[4])
			if err != nil {
				return Errf(`expected integer or "end" but got %q`, args[4])
			}
		}
		if first < 0 {
			first = 0
		}
		if last >= len(s) {
			last = len(s) - 1
		}
		if first > last {
			return Ok("")
		}
		return Ok(s[first : last+1])
	case "compare":
		if r := need(2, "string1 string2"); r.Code != OK {
			return r
		}
		return Ok(strconv.Itoa(strings.Compare(args[2], args[3])))
	case "equal":
		if r := need(2, "string1 string2"); r.Code != OK {
			return r
		}
		if args[2] == args[3] {
			return Ok("1")
		}
		return Ok("0")
	case "match":
		if r := need(2, "pattern string"); r.Code != OK {
			return r
		}
		if GlobMatch(args[2], args[3]) {
			return Ok("1")
		}
		return Ok("0")
	case "first":
		if r := need(2, "needle haystack"); r.Code != OK {
			return r
		}
		return Ok(strconv.Itoa(strings.Index(args[3], args[2])))
	case "last":
		if r := need(2, "needle haystack"); r.Code != OK {
			return r
		}
		return Ok(strconv.Itoa(strings.LastIndex(args[3], args[2])))
	case "tolower":
		if r := need(1, "string"); r.Code != OK {
			return r
		}
		return Ok(strings.ToLower(args[2]))
	case "toupper":
		if r := need(1, "string"); r.Code != OK {
			return r
		}
		return Ok(strings.ToUpper(args[2]))
	case "trim":
		return stringTrim(args, strings.Trim)
	case "trimleft":
		return stringTrim(args, strings.TrimLeft)
	case "trimright":
		return stringTrim(args, strings.TrimRight)
	case "repeat":
		if r := need(2, "string count"); r.Code != OK {
			return r
		}
		n, err := strconv.Atoi(args[3])
		if err != nil || n < 0 {
			return Errf("bad repeat count %q", args[3])
		}
		return Ok(strings.Repeat(args[2], n))
	case "reverse":
		if r := need(1, "string"); r.Code != OK {
			return r
		}
		b := []byte(args[2])
		for l, r := 0, len(b)-1; l < r; l, r = l+1, r-1 {
			b[l], b[r] = b[r], b[l]
		}
		return Ok(string(b))
	default:
		return Errf("bad option %q to string", op)
	}
}

func stringTrim(args []string, f func(string, string) string) Result {
	if len(args) < 3 || len(args) > 4 {
		return Errf(`wrong # args: should be "string %s string ?chars?"`, args[1])
	}
	cutset := " \t\n\r\v\f"
	if len(args) == 4 {
		cutset = args[3]
	}
	return Ok(f(args[2], cutset))
}

// cmdFormat implements format with the C-printf verb set Tcl supports:
// %d %i %u %o %x %X %c %s %f %e %E %g %G %% with width/precision/flags.
func cmdFormat(i *Interp, args []string) Result {
	if r := arity(args, 1, -1, "formatString ?arg ...?"); r.Code != OK {
		return r
	}
	spec := args[1]
	rest := args[2:]
	var sb strings.Builder
	argi := 0
	for k := 0; k < len(spec); k++ {
		c := spec[k]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		start := k
		k++
		if k < len(spec) && spec[k] == '%' {
			sb.WriteByte('%')
			continue
		}
		// flags, width, precision
		for k < len(spec) && strings.IndexByte("-+ #0", spec[k]) >= 0 {
			k++
		}
		for k < len(spec) && spec[k] >= '0' && spec[k] <= '9' {
			k++
		}
		if k < len(spec) && spec[k] == '.' {
			k++
			for k < len(spec) && spec[k] >= '0' && spec[k] <= '9' {
				k++
			}
		}
		// length modifiers (l, h) are accepted and ignored
		for k < len(spec) && (spec[k] == 'l' || spec[k] == 'h') {
			k++
		}
		if k >= len(spec) {
			return Errf(`format string ended in middle of field specifier`)
		}
		verb := spec[k]
		if argi >= len(rest) {
			return Errf("not enough arguments for all format specifiers")
		}
		arg := rest[argi]
		argi++
		directive := strings.ReplaceAll(spec[start:k], "l", "")
		directive = strings.ReplaceAll(directive, "h", "")
		switch verb {
		case 'd', 'i':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return Errf("expected integer but got %q", arg)
			}
			fmt.Fprintf(&sb, directive+"d", n)
		case 'u':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return Errf("expected integer but got %q", arg)
			}
			fmt.Fprintf(&sb, directive+"d", uint64(n))
		case 'o':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return Errf("expected integer but got %q", arg)
			}
			fmt.Fprintf(&sb, directive+"o", n)
		case 'x', 'X':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return Errf("expected integer but got %q", arg)
			}
			fmt.Fprintf(&sb, directive+string(verb), n)
		case 'c':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return Errf("expected integer but got %q", arg)
			}
			sb.WriteRune(rune(n))
		case 's':
			fmt.Fprintf(&sb, directive+"s", arg)
		case 'f', 'e', 'E', 'g', 'G':
			f, err := strconv.ParseFloat(strings.TrimSpace(arg), 64)
			if err != nil {
				return Errf("expected floating-point number but got %q", arg)
			}
			fmt.Fprintf(&sb, directive+string(verb), f)
		default:
			return Errf("bad field specifier %q", string(verb))
		}
	}
	return Ok(sb.String())
}

// cmdScan implements scan with %d, %f, %s, %c, %x, %o and literal matching.
// It returns the number of conversions performed, like Tcl.
func cmdScan(i *Interp, args []string) Result {
	if r := arity(args, 2, -1, "string formatString ?varName ...?"); r.Code != OK {
		return r
	}
	input := args[1]
	spec := args[2]
	vars := args[3:]
	si := 0
	converted := 0
	skipSpace := func() {
		for si < len(input) && (input[si] == ' ' || input[si] == '\t' || input[si] == '\n') {
			si++
		}
	}
	for k := 0; k < len(spec); k++ {
		c := spec[k]
		switch {
		case c == ' ' || c == '\t':
			skipSpace()
		case c == '%' && k+1 < len(spec):
			k++
			// optional width
			width := 0
			for k < len(spec) && spec[k] >= '0' && spec[k] <= '9' {
				width = width*10 + int(spec[k]-'0')
				k++
			}
			if k >= len(spec) {
				return Errf("format string ended in middle of field specifier")
			}
			verb := spec[k]
			if verb == '%' {
				if si < len(input) && input[si] == '%' {
					si++
				}
				continue
			}
			if converted >= len(vars) {
				return Errf("different numbers of variable names and field specifiers")
			}
			var value string
			switch verb {
			case 'd', 'x', 'o':
				skipSpace()
				start := si
				if si < len(input) && (input[si] == '-' || input[si] == '+') {
					si++
				}
				digits := "0123456789"
				if verb == 'x' {
					digits = "0123456789abcdefABCDEF"
				} else if verb == 'o' {
					digits = "01234567"
				}
				for si < len(input) && strings.IndexByte(digits, input[si]) >= 0 {
					si++
					if width > 0 && si-start >= width {
						break
					}
				}
				if si == start {
					goto done
				}
				text := input[start:si]
				base := 10
				if verb == 'x' {
					base = 16
				} else if verb == 'o' {
					base = 8
				}
				n, err := strconv.ParseInt(text, base, 64)
				if err != nil {
					goto done
				}
				value = strconv.FormatInt(n, 10)
			case 'f', 'e', 'g':
				skipSpace()
				start := si
				for si < len(input) && strings.IndexByte("+-0123456789.eE", input[si]) >= 0 {
					si++
				}
				if si == start {
					goto done
				}
				f, err := strconv.ParseFloat(input[start:si], 64)
				if err != nil {
					goto done
				}
				value = formatFloat(f)
			case 's':
				skipSpace()
				start := si
				for si < len(input) && input[si] != ' ' && input[si] != '\t' && input[si] != '\n' {
					si++
					if width > 0 && si-start >= width {
						break
					}
				}
				if si == start {
					goto done
				}
				value = input[start:si]
			case 'c':
				if si >= len(input) {
					goto done
				}
				value = strconv.Itoa(int(input[si]))
				si++
			default:
				return Errf("bad scan conversion character %q", string(verb))
			}
			i.SetVar(vars[converted], value)
			converted++
		default:
			if si < len(input) && input[si] == c {
				si++
			} else {
				goto done
			}
		}
	}
done:
	return Ok(strconv.Itoa(converted))
}

// cmdRegexp: regexp ?-nocase? ?-indices? exp string ?matchVar? ?subVar ...?
func cmdRegexp(i *Interp, args []string) Result {
	a := args[1:]
	nocase := false
	indices := false
	for len(a) > 0 && strings.HasPrefix(a[0], "-") {
		switch a[0] {
		case "-nocase":
			nocase = true
		case "-indices":
			indices = true
		case "--":
			a = a[1:]
			goto parsed
		default:
			return Errf("bad switch %q", a[0])
		}
		a = a[1:]
	}
parsed:
	if len(a) < 2 {
		return Errf(`wrong # args: should be "regexp ?switches? exp string ?matchVar? ?subVar ...?"`)
	}
	pat := a[0]
	if nocase {
		pat = "(?i)" + pat
	}
	re, err := pattern.CompileRegexp(pat)
	if err != nil {
		return Errf("couldn't compile regular expression pattern: %v", err)
	}
	str := a[1]
	locs := re.FindStringSubmatchIndex(str)
	if locs == nil {
		return Ok("0")
	}
	for vi, name := range a[2:] {
		var val string
		if 2*vi+1 < len(locs) && locs[2*vi] >= 0 {
			if indices {
				val = fmt.Sprintf("%d %d", locs[2*vi], locs[2*vi+1]-1)
			} else {
				val = str[locs[2*vi]:locs[2*vi+1]]
			}
		}
		i.SetVar(name, val)
	}
	return Ok("1")
}

// cmdRegsub: regsub ?-all? ?-nocase? exp string subSpec varName
func cmdRegsub(i *Interp, args []string) Result {
	a := args[1:]
	all := false
	nocase := false
	for len(a) > 0 && strings.HasPrefix(a[0], "-") {
		switch a[0] {
		case "-all":
			all = true
		case "-nocase":
			nocase = true
		case "--":
			a = a[1:]
			goto parsed
		default:
			return Errf("bad switch %q", a[0])
		}
		a = a[1:]
	}
parsed:
	if len(a) != 4 {
		return Errf(`wrong # args: should be "regsub ?switches? exp string subSpec varName"`)
	}
	pat := a[0]
	if nocase {
		pat = "(?i)" + pat
	}
	re, err := pattern.CompileRegexp(pat)
	if err != nil {
		return Errf("couldn't compile regular expression pattern: %v", err)
	}
	str, subSpec, varName := a[1], a[2], a[3]
	count := 0
	replace := func(m string) string {
		count++
		sub := re.FindStringSubmatch(m)
		var sb strings.Builder
		for k := 0; k < len(subSpec); k++ {
			c := subSpec[k]
			switch {
			case c == '&':
				sb.WriteString(m)
			case c == '\\' && k+1 < len(subSpec):
				k++
				d := subSpec[k]
				if d >= '0' && d <= '9' {
					gi := int(d - '0')
					if gi < len(sub) {
						sb.WriteString(sub[gi])
					}
				} else {
					sb.WriteByte(d)
				}
			default:
				sb.WriteByte(c)
			}
		}
		return sb.String()
	}
	var out string
	if all {
		out = re.ReplaceAllStringFunc(str, replace)
	} else {
		done := false
		out = re.ReplaceAllStringFunc(str, func(m string) string {
			if done {
				return m
			}
			done = true
			return replace(m)
		})
	}
	i.SetVar(varName, out)
	return Ok(strconv.Itoa(count))
}
