package tcl

// registerCompatCommands installs the 1990-era Tcl 2.x command names the
// paper's scripts use. In that dialect several of today's l*-prefixed list
// commands went by bare names, and `print` wrote to the terminal; expect's
// published examples (`send ATDT[index $argv 1]`, `{print busy; continue}`)
// depend on them.
func registerCompatCommands(i *Interp) {
	alias := func(oldName, newName string) {
		target := i.commands[newName]
		i.Register(oldName, func(in *Interp, args []string) Result {
			// Re-dispatch under the canonical name so error messages and
			// arity checks stay consistent.
			rewritten := make([]string, len(args))
			copy(rewritten, args)
			rewritten[0] = newName
			return target(in, rewritten)
		})
	}
	alias("index", "lindex")
	alias("length", "llength")
	alias("range", "lrange")
	alias("print", "puts")
}
