package tcl

import "strings"

// The compile-once evaluator. Classic Tcl re-lexes every script string each
// time it is evaluated, which makes loop bodies, proc bodies, and if arms pay
// the full parser on every iteration. compileScript instead parses a script
// string once into a command skeleton — commands of words, words of segments
// (literal runs, $variable references, [bracket] scripts) — that the
// interpreter can replay with only substitution work. Compiled skeletons are
// pure functions of the script text, so they are memoized in a bounded LRU
// keyed by the text itself (Interp.evalCache): redefining a proc or renaming
// a command can never serve a stale body, because bodies are keyed by their
// source and command dispatch stays by-name at evaluation time.
//
// Error timing is preserved exactly: the classic evaluator parses as it
// goes, so a syntax error after a runnable prefix surfaces only once
// evaluation reaches it. Compilation is therefore fail-soft — the commands
// before a parse error are kept and the error is raised when (and only when)
// execution arrives at that point.

type segKind uint8

const (
	// segLiteral is fixed text (including decoded backslash escapes).
	segLiteral segKind = iota
	// segVar is a $name or ${name} scalar reference, resolved at eval time.
	segVar
	// segVarArr is a $name(index) element reference; the index is itself a
	// segment list substituted at eval time.
	segVarArr
	// segVarArrOpen is a $name( reference whose ')' never arrives. The
	// classic scanner substitutes the index as it looks for the paren, so
	// an inner substitution failure outranks the missing-paren report;
	// evaluation replays the index segments in order and only then raises
	// `missing ")"`.
	segVarArrOpen
	// segScript is a [command] substitution holding a compiled script.
	segScript
)

// wordSeg is one substitution unit of a word.
type wordSeg struct {
	kind   segKind
	text   string          // literal text, or the variable name
	index  []wordSeg       // segVarArr: the array index segments
	script *compiledScript // segScript: the bracketed script
}

// compiledWord is one word of a command. A word with segs == nil is fully
// literal and evaluates to lit with no work at all.
type compiledWord struct {
	lit  string
	segs []wordSeg
}

// compiledCmd is one command: its words plus the parser bookkeeping the
// classic evaluator exposes through error behavior.
type compiledCmd struct {
	words []compiledWord
	// litWords caches the substituted word slice when every word is
	// literal, so replaying the command allocates nothing. Commands must
	// treat their argument slice as read-only (they do).
	litWords []string
	// bracketOK records whether the parser sits exactly on the terminating
	// ']' after this command — the classic evaluator only accepts a
	// `return` escaping a [bracket] substitution from that position.
	bracketOK bool
	// poisoned marks a command whose word list embeds a doomed nested
	// [script]; its nested prefix still runs (substitution reaches it and
	// fails), but the command itself must never dispatch.
	poisoned bool
	// parseErr, when non-nil, is a word-level parse error (missing
	// close-quote/brace, malformed variable reference). The classic
	// evaluator substitutes as it parses, so the complete words before the
	// failure and the partial segments of the failing word still run
	// before the error surfaces; partial holds those segments.
	parseErr *Result
	partial  []wordSeg
}

// compiledScript is the parse-once form of a script string.
type compiledScript struct {
	cmds []compiledCmd
	// parseErr, when non-nil, is the parse error that terminated
	// compilation; evaluation raises it only after the preceding commands
	// have run, matching parse-as-you-evaluate timing.
	parseErr *Result
	// end is the index just past the last consumed byte — for bracketed
	// scripts, the position of the terminating ']'.
	end int
	// endAtBracket reports that compilation ended on the terminating ']'
	// of a bracketed script.
	endAtBracket bool
}

// doomed reports that evaluating this script is guaranteed to end in a
// parse error (script-level or in its final command), so nothing can be
// parsed after it.
func (cs *compiledScript) doomed() bool {
	if cs.parseErr != nil {
		return true
	}
	if n := len(cs.cmds); n > 0 && cs.cmds[n-1].parseErr != nil {
		return true
	}
	return false
}

// compiler walks a script string producing compiledScript structures. It
// embeds parser for the shared lexical helpers (separator skipping, braced
// words, backslash decoding); the interp field stays nil because
// compilation never substitutes.
type compiler struct {
	parser
}

// compileScript parses src into a skeleton. bracketed mirrors evalScript:
// compilation stops at an unquoted ']' at command level.
func compileScript(src string, bracketed bool) *compiledScript {
	c := &compiler{parser{src: src}}
	return c.compile(bracketed)
}

func (c *compiler) compile(bracketed bool) *compiledScript {
	cs := &compiledScript{}
	for {
		c.skipCommandSeparators()
		if c.done() {
			cs.end = c.pos
			return cs
		}
		if bracketed && c.src[c.pos] == ']' {
			cs.end = c.pos
			cs.endAtBracket = true
			return cs
		}
		if c.src[c.pos] == '#' {
			c.skipComment()
			continue
		}
		words, partial, wordErr, terminated, poisoned := c.compileCommand(bracketed)
		if wordErr != nil {
			// Word-level parse error: the words and partial segments
			// before it still substitute (the classic evaluator ran them
			// on the way to the error), then the error surfaces.
			cs.cmds = append(cs.cmds, compiledCmd{
				words:    words,
				partial:  partial,
				parseErr: wordErr,
			})
			cs.end = c.pos
			return cs
		}
		if len(words) > 0 {
			cmd := compiledCmd{
				words:     words,
				bracketOK: c.pos < len(c.src) && c.src[c.pos] == ']',
				poisoned:  poisoned,
			}
			if lits := literalWords(words); lits != nil {
				cmd.litWords = lits
			}
			cs.cmds = append(cs.cmds, cmd)
		}
		if poisoned {
			// Parsing cannot continue past the embedded error; the error
			// itself is raised when the poisoned word is substituted.
			cs.end = c.pos
			return cs
		}
		if terminated {
			cs.end = c.pos
			cs.endAtBracket = true
			return cs
		}
	}
}

// literalWords returns the substituted word list if every word is literal.
func literalWords(words []compiledWord) []string {
	for i := range words {
		if words[i].segs != nil {
			return nil
		}
	}
	out := make([]string, len(words))
	for i := range words {
		out[i] = words[i].lit
	}
	return out
}

// compileCommand mirrors parser.parseCommand: it gathers the words of one
// command, stopping at a newline or semicolon (consumed) or, in bracketed
// mode, before ']'. poisoned reports that a word embeds a doomed nested
// script; wordErr reports a word-level parse error, with partial holding
// the failing word's already-compiled prefix segments. Either stops
// compilation of the enclosing script.
func (c *compiler) compileCommand(bracketed bool) (words []compiledWord, partial []wordSeg, wordErr *Result, terminated, poisoned bool) {
	for {
		if c.done() {
			return words, nil, nil, false, false
		}
		switch ch := c.src[c.pos]; {
		case ch == '\n' || ch == ';':
			c.pos++
			return words, nil, nil, false, false
		case bracketed && ch == ']':
			return words, nil, nil, true, false
		}
		word, wordPartial, res, wordPoisoned := c.compileWord(bracketed)
		if res.Code != OK {
			return words, wordPartial, &res, false, false
		}
		words = append(words, word)
		if wordPoisoned {
			return words, nil, nil, false, true
		}
		if !c.skipInterWordSpace() {
			if c.done() {
				return words, nil, nil, false, false
			}
			continue
		}
	}
}

// compileWord compiles a single word starting at c.pos. On a parse error,
// partial holds the word's already-compiled prefix segments — the classic
// evaluator substituted those on the way to the error.
func (c *compiler) compileWord(bracketed bool) (word compiledWord, partial []wordSeg, res Result, poisoned bool) {
	switch c.src[c.pos] {
	case '{':
		lit, res := c.parseBracedWord()
		if res.Code != OK {
			// Braced words substitute nothing, so there is no prefix.
			return compiledWord{}, nil, res, false
		}
		return compiledWord{lit: lit}, nil, Ok(""), false
	case '"':
		return c.compileQuotedWord(bracketed)
	default:
		return c.compileBareWord(bracketed)
	}
}

func (c *compiler) compileQuotedWord(bracketed bool) (compiledWord, []wordSeg, Result, bool) {
	c.pos++ // consume opening quote
	var b segBuilder
	for !c.done() {
		if c.src[c.pos] == '"' {
			c.pos++
			if !c.atWordEnd() && !(bracketed && !c.done() && c.src[c.pos] == ']') {
				// The word fully substituted before this check failed.
				return compiledWord{}, wordSegs(b.word()),
					Errf("extra characters after close-quote"), false
			}
			return b.word(), nil, Ok(""), false
		}
		res, poisoned := c.compileSubstUnit(&b)
		if res.Code != OK {
			return compiledWord{}, wordSegs(b.word()), res, false
		}
		if poisoned {
			return b.word(), nil, Ok(""), true
		}
	}
	return compiledWord{}, wordSegs(b.word()), Errf("missing close-quote"), false
}

func (c *compiler) compileBareWord(bracketed bool) (compiledWord, []wordSeg, Result, bool) {
	var b segBuilder
	for !c.done() {
		ch := c.src[c.pos]
		switch ch {
		case ' ', '\t', '\r', '\n', ';':
			return b.word(), nil, Ok(""), false
		case ']':
			if bracketed {
				return b.word(), nil, Ok(""), false
			}
		case '\\':
			if c.pos+1 < len(c.src) && c.src[c.pos+1] == '\n' {
				return b.word(), nil, Ok(""), false
			}
		}
		res, poisoned := c.compileSubstUnit(&b)
		if res.Code != OK {
			return compiledWord{}, wordSegs(b.word()), res, false
		}
		if poisoned {
			return b.word(), nil, Ok(""), true
		}
	}
	return b.word(), nil, Ok(""), false
}

// compileSubstUnit compiles one substitution unit (the structural twin of
// parser.substOne). poisoned reports that a nested [script] carries a parse
// error, which stops compilation of everything enclosing it.
func (c *compiler) compileSubstUnit(b *segBuilder) (Result, bool) {
	switch ch := c.src[c.pos]; ch {
	case '\\':
		rep, n := backslashSubst(c.src[c.pos:])
		b.literal(rep)
		c.pos += n
	case '$':
		seg, n, res, poisoned := c.compileVarRef()
		if res.Code != OK {
			return res, false
		}
		b.seg(seg)
		c.pos += n
		if poisoned {
			// The array index embeds a script with a parse error;
			// substituting this segment always fails, and the classic
			// evaluator never parses past that point.
			return Ok(""), true
		}
	case '[':
		c.pos++
		sub := &compiler{parser{src: c.src, pos: c.pos}}
		nested := sub.compile(true)
		if nested.doomed() {
			// The classic evaluator runs the nested prefix, hits the parse
			// error, and never looks at anything beyond it.
			b.seg(wordSeg{kind: segScript, script: nested})
			c.pos = nested.end
			return Ok(""), true
		}
		if !nested.endAtBracket {
			// Input exhausted before the terminator: the nested commands
			// still run before the error surfaces.
			missing := Errf("missing close-bracket")
			nested.parseErr = &missing
			b.seg(wordSeg{kind: segScript, script: nested})
			c.pos = nested.end
			return Ok(""), true
		}
		b.seg(wordSeg{kind: segScript, script: nested})
		c.pos = nested.end + 1 // consume ']'
	default:
		b.literalByte(ch)
		c.pos++
	}
	return Ok(""), false
}

// compileVarRef compiles a $-substitution beginning at c.pos (which holds
// '$'), returning the segment and the number of source bytes consumed. It
// mirrors parser.varSubst, deferring variable reads to evaluation. poisoned
// reports that the array index embeds a script with a parse error, which
// halts compilation of everything enclosing it.
func (c *compiler) compileVarRef() (wordSeg, int, Result, bool) {
	src := c.src[c.pos:]
	if len(src) < 2 {
		return wordSeg{kind: segLiteral, text: "$"}, 1, Ok(""), false
	}
	if src[1] == '{' {
		end := strings.IndexByte(src[2:], '}')
		if end < 0 {
			return wordSeg{}, 0, Errf(`missing close-brace for variable name`), false
		}
		return wordSeg{kind: segVar, text: src[2 : 2+end]}, 2 + end + 1, Ok(""), false
	}
	j := 1
	for j < len(src) && isVarNameChar(src[j]) {
		j++
	}
	if j == 1 {
		return wordSeg{kind: segLiteral, text: "$"}, 1, Ok(""), false
	}
	name := src[1:j]
	if j < len(src) && src[j] == '(' {
		// Array element: the index itself undergoes substitution.
		sub := &compiler{parser{src: c.src, pos: c.pos + j + 1}}
		var ib segBuilder
		for !sub.done() && sub.src[sub.pos] != ')' {
			res, poisoned := sub.compileSubstUnit(&ib)
			if res.Code != OK {
				return wordSeg{}, 0, res, false
			}
			if poisoned {
				// A nested [script] inside the index carries a parse
				// error; evaluating the index is guaranteed to fail, so
				// park the poisoned segs and let evaluation raise it.
				w := ib.word()
				return wordSeg{kind: segVarArr, text: name, index: wordSegs(w)},
					sub.pos - c.pos, Ok(""), true
			}
		}
		if sub.done() {
			w := ib.word()
			return wordSeg{kind: segVarArrOpen, text: name, index: wordSegs(w)},
				sub.pos - c.pos, Ok(""), false
		}
		sub.pos++ // consume ')'
		w := ib.word()
		return wordSeg{kind: segVarArr, text: name, index: wordSegs(w)},
			sub.pos - c.pos, Ok(""), false
	}
	return wordSeg{kind: segVar, text: name}, j, Ok(""), false
}

// wordSegs normalizes a compiledWord into a segment list (a literal word
// becomes a single literal segment).
func wordSegs(w compiledWord) []wordSeg {
	if w.segs != nil {
		return w.segs
	}
	return []wordSeg{{kind: segLiteral, text: w.lit}}
}

// segBuilder accumulates word segments, merging adjacent literal runs and
// collapsing all-literal words into a plain string.
type segBuilder struct {
	segs []wordSeg
	lit  strings.Builder
}

func (b *segBuilder) literal(s string) { b.lit.WriteString(s) }

func (b *segBuilder) literalByte(ch byte) { b.lit.WriteByte(ch) }

func (b *segBuilder) flush() {
	if b.lit.Len() > 0 {
		b.segs = append(b.segs, wordSeg{kind: segLiteral, text: b.lit.String()})
		b.lit.Reset()
	}
}

func (b *segBuilder) seg(s wordSeg) {
	if s.kind == segLiteral {
		b.lit.WriteString(s.text)
		return
	}
	b.flush()
	b.segs = append(b.segs, s)
}

// word finalizes the builder. All-literal content returns a segs==nil word.
func (b *segBuilder) word() compiledWord {
	if b.segs == nil {
		return compiledWord{lit: b.lit.String()}
	}
	b.flush()
	return compiledWord{segs: b.segs}
}

// --- evaluation ---------------------------------------------------------

// runCompiled replays a compiled script. atBracket reports whether the
// parser-equivalent position sits on the terminating ']' at the point the
// script completed — the condition under which a [bracket] substitution
// accepts a `return` completion code (see substCompiledSeg).
func (i *Interp) runCompiled(cs *compiledScript) (Result, bool) {
	last := Ok("")
	for k := range cs.cmds {
		cmd := &cs.cmds[k]
		words, res := i.substCompiledWords(cmd)
		if res.Code != OK {
			return res, false
		}
		if cmd.parseErr != nil {
			// Word-level parse error: the failing word's prefix segments
			// still substitute (for their side effects and their own,
			// earlier errors), then the parse error surfaces.
			if _, res := i.substSegs(cmd.partial); res.Code != OK {
				return res, false
			}
			return *cmd.parseErr, false
		}
		if cmd.poisoned {
			// Unreachable by construction: a poisoned word always fails
			// substitution. Guard anyway so a logic slip cannot dispatch a
			// half-parsed command.
			return Errf("internal: poisoned command survived substitution"), false
		}
		res = i.EvalWords(words)
		if res.Code != OK {
			if res.Code == Error {
				i.noteErrorLine(words)
			}
			return res, cmd.bracketOK
		}
		last = res
	}
	if cs.parseErr != nil {
		return *cs.parseErr, false
	}
	return last, cs.endAtBracket
}

// substCompiledWords produces the fully substituted argument words of one
// command.
func (i *Interp) substCompiledWords(cmd *compiledCmd) ([]string, Result) {
	if cmd.litWords != nil {
		return cmd.litWords, Ok("")
	}
	words := make([]string, len(cmd.words))
	for k := range cmd.words {
		w := &cmd.words[k]
		if w.segs == nil {
			words[k] = w.lit
			continue
		}
		val, res := i.substSegs(w.segs)
		if res.Code != OK {
			return nil, res
		}
		words[k] = val
	}
	return words, Ok("")
}

// substSegs evaluates a segment list to its string value.
func (i *Interp) substSegs(segs []wordSeg) (string, Result) {
	// Single-segment words skip the builder entirely.
	if len(segs) == 1 {
		return i.substCompiledSeg(&segs[0])
	}
	var sb strings.Builder
	for k := range segs {
		val, res := i.substCompiledSeg(&segs[k])
		if res.Code != OK {
			return "", res
		}
		sb.WriteString(val)
	}
	return sb.String(), Ok("")
}

// substCompiledSeg evaluates one segment.
func (i *Interp) substCompiledSeg(seg *wordSeg) (string, Result) {
	switch seg.kind {
	case segLiteral:
		return seg.text, Ok("")
	case segVar:
		val, ok := i.GetVar(seg.text)
		if !ok {
			return "", Errf("can't read %q: no such variable", seg.text)
		}
		return val, Ok("")
	case segVarArr:
		idx, res := i.substSegs(seg.index)
		if res.Code != OK {
			return "", res
		}
		if v, ok := i.lookupVar(seg.text); ok && v.isArr {
			if val, ok := v.arr[idx]; ok {
				return val, Ok("")
			}
		}
		return "", Errf("can't read %q: no such element in array", seg.text+"("+idx+")")
	case segVarArrOpen:
		if _, res := i.substSegs(seg.index); res.Code != OK {
			return "", res
		}
		return "", Errf(`missing ")" in array reference`)
	case segScript:
		out, atBracket := i.runCompiled(seg.script)
		if out.Code == Return {
			// The classic evaluator only accepts a return that stops
			// exactly on the terminating ']'.
			if !atBracket {
				return "", Errf("missing close-bracket")
			}
			return out.Value, Ok("")
		}
		if out.Code != OK {
			return "", out
		}
		return out.Value, Ok("")
	}
	return "", Errf("internal: unknown segment kind %d", seg.kind)
}
