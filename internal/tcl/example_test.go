package tcl_test

import (
	"fmt"

	"repro/internal/tcl"
)

// Example evaluates the paper's recursive factorial procedure (§3).
func Example() {
	i := tcl.New()
	out, err := i.Eval(`
		proc fac x {
			if {$x == 1} {return 1}
			return [expr {$x * [fac [expr $x-1]]}]
		}
		fac 6
	`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(out)
	// Output: 720
}

// ExampleInterp_Eval shows the swap fragment from §3: braces defer
// substitution so expr sees the raw variable references.
func ExampleInterp_Eval() {
	i := tcl.New()
	out, err := i.Eval(`
		set a 1
		set b 2
		if {$a < $b} {
			set tmp $a
			set a $b
			set b $tmp
		}
		list $a $b
	`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(out)
	// Output: 2 1
}

// ExampleInterp_Register adds an application command, the embedding story
// that §7.1 says made Tcl the right base for expect.
func ExampleInterp_Register() {
	i := tcl.New()
	i.Register("double", func(in *tcl.Interp, args []string) tcl.Result {
		if len(args) != 2 {
			return tcl.Errf("usage: double n")
		}
		n, res := in.ExprInt(args[1])
		if res.Code != tcl.OK {
			return res
		}
		return tcl.Ok(fmt.Sprint(2 * n))
	})
	out, _ := i.Eval(`double [expr 10+11]`)
	fmt.Println(out)
	// Output: 42
}

// ExampleParseList shows Tcl list quoting round-tripping.
func ExampleParseList() {
	list := tcl.FormList([]string{"plain", "two words", "{braced}"})
	fmt.Println(list)
	items, _ := tcl.ParseList(list)
	fmt.Println(len(items), items[1])
	// Output:
	// plain {two words} {{braced}}
	// 3 two words
}
