package tcl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The expr evaluator: a recursive-descent parser over the (unsubstituted)
// expression text. As in real Tcl, expr performs its own $-variable,
// [command], and "quoted string" substitution, which is why the idiomatic
// braced form `expr {$a < $b}` works: the braces deliver the raw text here.
// The && , || and ?: operators are lazy: the untaken side is parsed but not
// evaluated, so its substitutions never run.

type valueKind int

const (
	vInt valueKind = iota
	vFloat
	vString
)

type exprValue struct {
	kind valueKind
	i    int64
	f    float64
	s    string
}

func intVal(i int64) exprValue     { return exprValue{kind: vInt, i: i} }
func floatVal(f float64) exprValue { return exprValue{kind: vFloat, f: f} }
func strVal(s string) exprValue    { return exprValue{kind: vString, s: s} }
func boolVal(b bool) exprValue {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

func (v exprValue) String() string {
	switch v.kind {
	case vInt:
		return strconv.FormatInt(v.i, 10)
	case vFloat:
		return formatFloat(v.f)
	default:
		return v.s
	}
}

// formatFloat renders a float the way Tcl does: always distinguishable from
// an integer (a trailing ".0" if needed).
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	s := strconv.FormatFloat(f, 'g', 12, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// numeric coerces v to a numeric value if possible.
func (v exprValue) numeric() (exprValue, bool) {
	switch v.kind {
	case vInt, vFloat:
		return v, true
	default:
		return parseNumber(strings.TrimSpace(v.s))
	}
}

func parseNumber(s string) (exprValue, bool) {
	if s == "" {
		return exprValue{}, false
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return intVal(i), true
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return floatVal(f), true
	}
	return exprValue{}, false
}

// truth interprets v as a boolean condition.
func (v exprValue) truth() (bool, error) {
	if n, ok := v.numeric(); ok {
		if n.kind == vInt {
			return n.i != 0, nil
		}
		return n.f != 0, nil
	}
	switch strings.ToLower(strings.TrimSpace(v.s)) {
	case "true", "yes", "on":
		return true, nil
	case "false", "no", "off":
		return false, nil
	}
	return false, fmt.Errorf("expected boolean value but got %q", v.s)
}

// ExprString evaluates a Tcl expression and returns its string result.
func (i *Interp) ExprString(text string) (string, Result) {
	v, res := i.exprValue(text)
	if res.Code != OK {
		return "", res
	}
	return v.String(), Ok("")
}

// ExprBool evaluates a Tcl expression as a condition.
func (i *Interp) ExprBool(text string) (bool, Result) {
	v, res := i.exprValue(text)
	if res.Code != OK {
		return false, res
	}
	b, err := v.truth()
	if err != nil {
		return false, Errf("%v", err)
	}
	return b, Ok("")
}

// ExprInt evaluates a Tcl expression that must yield an integer.
func (i *Interp) ExprInt(text string) (int64, Result) {
	v, res := i.exprValue(text)
	if res.Code != OK {
		return 0, res
	}
	n, ok := v.numeric()
	if !ok {
		return 0, Errf("expected integer but got %q", v.String())
	}
	if n.kind == vFloat {
		return int64(n.f), Ok("")
	}
	return n.i, Ok("")
}

func (i *Interp) exprValue(text string) (exprValue, Result) {
	if i.evalMode == EvalClassic || i.exprCache == nil {
		return i.exprValueUncached(text)
	}
	if i.evalMode == EvalVM && i.vmExprCache != nil {
		return i.vmExprValue(text)
	}
	ast, ok := i.exprCache.Get(text)
	if !ok {
		ast = compileExpr(text)
		i.exprCache.Put(text, ast)
	}
	return ast.run(i)
}

// exprValueUncached is the classic re-parsing evaluator, kept as the
// baseline when caching is disabled (SetEvalCacheSize(0)) and for
// cached-vs-uncached equivalence tests.
func (i *Interp) exprValueUncached(text string) (exprValue, Result) {
	ep := &exprParser{interp: i, src: text}
	v, res := ep.ternary(true)
	if res.Code != OK {
		return exprValue{}, res
	}
	ep.skipSpace()
	if ep.pos < len(ep.src) {
		return exprValue{}, Errf("syntax error in expression %q", text)
	}
	return v, Ok("")
}

type exprParser struct {
	interp *Interp
	src    string
	pos    int
}

func (e *exprParser) skipSpace() {
	for e.pos < len(e.src) {
		switch e.src[e.pos] {
		case ' ', '\t', '\n', '\r':
			e.pos++
		default:
			return
		}
	}
}

// peekOp matches one of ops (longest first) at the cursor.
func (e *exprParser) peekOp(ops ...string) string {
	e.skipSpace()
	return matchExprOp(e.src[e.pos:], ops...)
}

// matchExprOp matches one of ops at the start of rest, shared by the
// re-parsing evaluator and the AST compiler so both tokenize identically.
func matchExprOp(rest string, ops ...string) string {
	for _, op := range ops {
		if strings.HasPrefix(rest, op) {
			// Guard: "<" must not match "<<" or "<=".
			tail := rest[len(op):]
			if (op == "<" || op == ">") && len(tail) > 0 && (tail[0] == '=' || tail[0] == op[0]) {
				continue
			}
			if (op == "&" || op == "|") && len(tail) > 0 && tail[0] == op[0] {
				continue
			}
			if op == "=" { // never a valid operator alone
				continue
			}
			if op == "!" && len(tail) > 0 && tail[0] == '=' {
				continue
			}
			return op
		}
	}
	return ""
}

func (e *exprParser) consume(op string) { e.pos += len(op) }

func (e *exprParser) ternary(eval bool) (exprValue, Result) {
	cond, res := e.or(eval)
	if res.Code != OK {
		return cond, res
	}
	if e.peekOp("?") == "" {
		return cond, Ok("")
	}
	e.consume("?")
	var take bool
	if eval {
		b, err := cond.truth()
		if err != nil {
			return exprValue{}, Errf("%v", err)
		}
		take = b
	}
	left, res := e.ternary(eval && take)
	if res.Code != OK {
		return left, res
	}
	e.skipSpace()
	if e.pos >= len(e.src) || e.src[e.pos] != ':' {
		return exprValue{}, Errf(`missing ":" in ternary expression`)
	}
	e.pos++
	right, res := e.ternary(eval && !take)
	if res.Code != OK {
		return right, res
	}
	if !eval {
		return intVal(0), Ok("")
	}
	if take {
		return left, Ok("")
	}
	return right, Ok("")
}

func (e *exprParser) or(eval bool) (exprValue, Result) {
	v, res := e.and(eval)
	if res.Code != OK {
		return v, res
	}
	for e.peekOp("||") != "" {
		e.consume("||")
		lhs := false
		if eval {
			b, err := v.truth()
			if err != nil {
				return exprValue{}, Errf("%v", err)
			}
			lhs = b
		}
		rhs, res := e.and(eval && !lhs)
		if res.Code != OK {
			return rhs, res
		}
		if eval {
			if lhs {
				v = boolVal(true)
			} else {
				b, err := rhs.truth()
				if err != nil {
					return exprValue{}, Errf("%v", err)
				}
				v = boolVal(b)
			}
		}
	}
	return v, Ok("")
}

func (e *exprParser) and(eval bool) (exprValue, Result) {
	v, res := e.bitOr(eval)
	if res.Code != OK {
		return v, res
	}
	for e.peekOp("&&") != "" {
		e.consume("&&")
		lhs := true
		if eval {
			b, err := v.truth()
			if err != nil {
				return exprValue{}, Errf("%v", err)
			}
			lhs = b
		}
		rhs, res := e.bitOr(eval && lhs)
		if res.Code != OK {
			return rhs, res
		}
		if eval {
			if !lhs {
				v = boolVal(false)
			} else {
				b, err := rhs.truth()
				if err != nil {
					return exprValue{}, Errf("%v", err)
				}
				v = boolVal(b)
			}
		}
	}
	return v, Ok("")
}

// binaryLevel factors the pattern shared by the plain left-associative
// levels: parse the next tighter level, then fold operators.
func (e *exprParser) binaryLevel(eval bool, next func(bool) (exprValue, Result),
	apply func(op string, a, b exprValue) (exprValue, Result), ops ...string) (exprValue, Result) {
	v, res := next(eval)
	if res.Code != OK {
		return v, res
	}
	for {
		op := e.peekOp(ops...)
		if op == "" {
			return v, Ok("")
		}
		e.consume(op)
		rhs, res := next(eval)
		if res.Code != OK {
			return rhs, res
		}
		if eval {
			v, res = apply(op, v, rhs)
			if res.Code != OK {
				return v, res
			}
		}
	}
}

func (e *exprParser) bitOr(eval bool) (exprValue, Result) {
	return e.binaryLevel(eval, e.bitXor, applyIntOp, "|")
}
func (e *exprParser) bitXor(eval bool) (exprValue, Result) {
	return e.binaryLevel(eval, e.bitAnd, applyIntOp, "^")
}
func (e *exprParser) bitAnd(eval bool) (exprValue, Result) {
	return e.binaryLevel(eval, e.equality, applyIntOp, "&")
}
func (e *exprParser) equality(eval bool) (exprValue, Result) {
	return e.binaryLevel(eval, e.relational, applyCompare, "==", "!=")
}
func (e *exprParser) relational(eval bool) (exprValue, Result) {
	return e.binaryLevel(eval, e.shift, applyCompare, "<=", ">=", "<", ">")
}
func (e *exprParser) shift(eval bool) (exprValue, Result) {
	return e.binaryLevel(eval, e.additive, applyIntOp, "<<", ">>")
}
func (e *exprParser) additive(eval bool) (exprValue, Result) {
	return e.binaryLevel(eval, e.multiplicative, applyArith, "+", "-")
}
func (e *exprParser) multiplicative(eval bool) (exprValue, Result) {
	return e.binaryLevel(eval, e.unary, applyArith, "*", "/", "%")
}

func (e *exprParser) unary(eval bool) (exprValue, Result) {
	e.skipSpace()
	if e.pos < len(e.src) {
		switch c := e.src[e.pos]; c {
		case '-', '+', '!', '~':
			if c == '!' && e.pos+1 < len(e.src) && e.src[e.pos+1] == '=' {
				break
			}
			e.pos++
			v, res := e.unary(eval)
			if res.Code != OK || !eval {
				return v, res
			}
			return applyUnary(c, v)
		}
	}
	return e.primary(eval)
}

func applyUnary(op byte, v exprValue) (exprValue, Result) {
	n, ok := v.numeric()
	if !ok {
		return exprValue{}, Errf("can't use non-numeric string %q as operand of %q", v.String(), string(op))
	}
	switch op {
	case '+':
		return n, Ok("")
	case '-':
		if n.kind == vFloat {
			return floatVal(-n.f), Ok("")
		}
		return intVal(-n.i), Ok("")
	case '!':
		b, _ := n.truth()
		return boolVal(!b), Ok("")
	case '~':
		if n.kind != vInt {
			return exprValue{}, Errf(`can't use floating-point value as operand of "~"`)
		}
		return intVal(^n.i), Ok("")
	}
	return exprValue{}, Errf("unknown unary operator %q", string(op))
}

func applyIntOp(op string, a, b exprValue) (exprValue, Result) {
	an, aok := a.numeric()
	bn, bok := b.numeric()
	if !aok || !bok || an.kind != vInt || bn.kind != vInt {
		return exprValue{}, Errf("can't use non-integer value as operand of %q", op)
	}
	switch op {
	case "|":
		return intVal(an.i | bn.i), Ok("")
	case "^":
		return intVal(an.i ^ bn.i), Ok("")
	case "&":
		return intVal(an.i & bn.i), Ok("")
	case "<<":
		if bn.i < 0 || bn.i > 63 {
			return exprValue{}, Errf("invalid shift count %d", bn.i)
		}
		return intVal(an.i << uint(bn.i)), Ok("")
	case ">>":
		if bn.i < 0 || bn.i > 63 {
			return exprValue{}, Errf("invalid shift count %d", bn.i)
		}
		return intVal(an.i >> uint(bn.i)), Ok("")
	}
	return exprValue{}, Errf("unknown operator %q", op)
}

func applyArith(op string, a, b exprValue) (exprValue, Result) {
	an, aok := a.numeric()
	bn, bok := b.numeric()
	if !aok || !bok {
		return exprValue{}, Errf("can't use non-numeric string as operand of %q", op)
	}
	if an.kind == vInt && bn.kind == vInt {
		switch op {
		case "+":
			return intVal(an.i + bn.i), Ok("")
		case "-":
			return intVal(an.i - bn.i), Ok("")
		case "*":
			return intVal(an.i * bn.i), Ok("")
		case "/":
			if bn.i == 0 {
				return exprValue{}, Errf("divide by zero")
			}
			// Tcl floors integer division toward negative infinity.
			q := an.i / bn.i
			if (an.i%bn.i != 0) && ((an.i < 0) != (bn.i < 0)) {
				q--
			}
			return intVal(q), Ok("")
		case "%":
			if bn.i == 0 {
				return exprValue{}, Errf("divide by zero")
			}
			r := an.i % bn.i
			if r != 0 && ((an.i < 0) != (bn.i < 0)) {
				r += bn.i
			}
			return intVal(r), Ok("")
		}
	}
	af, bf := an.asFloat(), bn.asFloat()
	switch op {
	case "+":
		return floatVal(af + bf), Ok("")
	case "-":
		return floatVal(af - bf), Ok("")
	case "*":
		return floatVal(af * bf), Ok("")
	case "/":
		if bf == 0 {
			return exprValue{}, Errf("divide by zero")
		}
		return floatVal(af / bf), Ok("")
	case "%":
		return exprValue{}, Errf(`can't use floating-point value as operand of "%%"`)
	}
	return exprValue{}, Errf("unknown operator %q", op)
}

func (v exprValue) asFloat() float64 {
	if v.kind == vFloat {
		return v.f
	}
	return float64(v.i)
}

func applyCompare(op string, a, b exprValue) (exprValue, Result) {
	an, aok := a.numeric()
	bn, bok := b.numeric()
	var cmp int
	if aok && bok {
		if an.kind == vInt && bn.kind == vInt {
			switch {
			case an.i < bn.i:
				cmp = -1
			case an.i > bn.i:
				cmp = 1
			}
		} else {
			af, bf := an.asFloat(), bn.asFloat()
			switch {
			case af < bf:
				cmp = -1
			case af > bf:
				cmp = 1
			}
		}
	} else {
		cmp = strings.Compare(a.String(), b.String())
	}
	switch op {
	case "==":
		return boolVal(cmp == 0), Ok("")
	case "!=":
		return boolVal(cmp != 0), Ok("")
	case "<":
		return boolVal(cmp < 0), Ok("")
	case ">":
		return boolVal(cmp > 0), Ok("")
	case "<=":
		return boolVal(cmp <= 0), Ok("")
	case ">=":
		return boolVal(cmp >= 0), Ok("")
	}
	return exprValue{}, Errf("unknown comparison %q", op)
}

// primary parses an operand: a parenthesized subexpression, a number, a
// $variable, a [command], a "quoted string", a {braced string}, or a math
// function call.
func (e *exprParser) primary(eval bool) (exprValue, Result) {
	e.skipSpace()
	if e.pos >= len(e.src) {
		return exprValue{}, Errf("premature end of expression")
	}
	switch c := e.src[e.pos]; {
	case c == '(':
		e.pos++
		v, res := e.ternary(eval)
		if res.Code != OK {
			return v, res
		}
		e.skipSpace()
		if e.pos >= len(e.src) || e.src[e.pos] != ')' {
			return exprValue{}, Errf("looking for close parenthesis")
		}
		e.pos++
		return v, Ok("")
	case c == '$':
		p := &parser{interp: e.interp, src: e.src, pos: e.pos}
		if !eval {
			// Skip the variable reference without reading it.
			n := e.skipVarRef()
			e.pos += n
			return intVal(0), Ok("")
		}
		val, n, res := p.varSubst()
		if res.Code != OK {
			return exprValue{}, res
		}
		e.pos += n
		return operandValue(val), Ok("")
	case c == '[':
		if !eval {
			n, res := e.skipBracket()
			if res.Code != OK {
				return exprValue{}, res
			}
			e.pos += n
			return intVal(0), Ok("")
		}
		e.pos++
		out := e.interp.evalScript(e.src[e.pos:], true)
		if out.Code != OK && out.Code != Return {
			return exprValue{}, out.Result
		}
		e.pos += out.end
		if e.pos >= len(e.src) || e.src[e.pos] != ']' {
			return exprValue{}, Errf("missing close-bracket")
		}
		e.pos++
		return operandValue(out.Value), Ok("")
	case c == '"':
		p := &parser{interp: e.interp, src: e.src, pos: e.pos}
		word, res := p.parseQuotedWordLoose()
		if res.Code != OK {
			return exprValue{}, res
		}
		e.pos = p.pos
		if !eval {
			return intVal(0), Ok("")
		}
		return strVal(word), Ok("")
	case c == '{':
		p := &parser{interp: e.interp, src: e.src, pos: e.pos}
		word, res := p.parseBracedWordLoose()
		if res.Code != OK {
			return exprValue{}, res
		}
		e.pos = p.pos
		return strVal(word), Ok("")
	case c >= '0' && c <= '9' || c == '.':
		return e.number()
	case isVarNameChar(c):
		return e.funcCall(eval)
	default:
		return exprValue{}, Errf("syntax error in expression: unexpected %q", string(c))
	}
}

// skipVarRef measures a $-reference without evaluating it.
func (e *exprParser) skipVarRef() int {
	src := e.src[e.pos:]
	if len(src) < 2 {
		return 1
	}
	if src[1] == '{' {
		if end := strings.IndexByte(src[2:], '}'); end >= 0 {
			return 2 + end + 1
		}
		return len(src)
	}
	j := 1
	for j < len(src) && isVarNameChar(src[j]) {
		j++
	}
	if j < len(src) && src[j] == '(' {
		depth := 1
		k := j + 1
		for k < len(src) && depth > 0 {
			switch src[k] {
			case '(':
				depth++
			case ')':
				depth--
			}
			k++
		}
		return k
	}
	return j
}

// skipBracket measures a [...] without evaluating it.
func (e *exprParser) skipBracket() (int, Result) {
	depth := 0
	for j := e.pos; j < len(e.src); j++ {
		switch e.src[j] {
		case '\\':
			j++
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				return j - e.pos + 1, Ok("")
			}
		}
	}
	return 0, Errf("missing close-bracket")
}

func (e *exprParser) number() (exprValue, Result) {
	v, n, res := scanExprNumber(e.src, e.pos)
	e.pos = n
	return v, res
}

// scanExprNumber lexes a numeric literal at src[start:], returning the
// value and the index past it. Shared by the re-parsing evaluator and the
// AST compiler.
func scanExprNumber(src string, start int) (exprValue, int, Result) {
	j := start
	seenDot, seenExp := false, false
	if strings.HasPrefix(src[j:], "0x") || strings.HasPrefix(src[j:], "0X") {
		j += 2
		for j < len(src) && isHexDigit(src[j]) {
			j++
		}
		i, err := strconv.ParseInt(src[start:j], 0, 64)
		if err != nil {
			return exprValue{}, j, Errf("malformed number %q", src[start:j])
		}
		return intVal(i), j, Ok("")
	}
	for j < len(src) {
		c := src[j]
		switch {
		case c >= '0' && c <= '9':
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && j > start:
			seenExp = true
			if j+1 < len(src) && (src[j+1] == '+' || src[j+1] == '-') {
				j++
			}
		default:
			goto done
		}
		j++
	}
done:
	text := src[start:j]
	if seenDot || seenExp {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return exprValue{}, j, Errf("malformed number %q", text)
		}
		return floatVal(f), j, Ok("")
	}
	i, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		return exprValue{}, j, Errf("malformed number %q", text)
	}
	return intVal(i), j, Ok("")
}

// funcCall parses name(arg[,arg]) math functions: abs, int, round, double.
func (e *exprParser) funcCall(eval bool) (exprValue, Result) {
	start := e.pos
	for e.pos < len(e.src) && isVarNameChar(e.src[e.pos]) {
		e.pos++
	}
	name := e.src[start:e.pos]
	e.skipSpace()
	if e.pos >= len(e.src) || e.src[e.pos] != '(' {
		// Boolean literals are the only bare words Tcl conditions accept.
		switch strings.ToLower(name) {
		case "true", "yes", "on", "false", "no", "off":
			return strVal(name), Ok("")
		}
		return exprValue{}, Errf("syntax error in expression: unexpected bare word %q", name)
	}
	e.pos++
	arg, res := e.ternary(eval)
	if res.Code != OK {
		return arg, res
	}
	e.skipSpace()
	if e.pos >= len(e.src) || e.src[e.pos] != ')' {
		return exprValue{}, Errf("missing close parenthesis in function call")
	}
	e.pos++
	if !eval {
		return intVal(0), Ok("")
	}
	return applyMathFunc(name, arg)
}

// applyMathFunc evaluates a math function call, shared by the re-parsing
// evaluator and the AST's funcNode. Argument checks and the unknown-name
// error happen here — at evaluation, never at parse — so untaken calls are
// free to name unknown functions.
func applyMathFunc(name string, arg exprValue) (exprValue, Result) {
	n, ok := arg.numeric()
	if !ok {
		return exprValue{}, Errf("argument to %s() is not numeric: %q", name, arg.String())
	}
	switch name {
	case "abs":
		if n.kind == vFloat {
			return floatVal(math.Abs(n.f)), Ok("")
		}
		if n.i < 0 {
			return intVal(-n.i), Ok("")
		}
		return n, Ok("")
	case "int":
		return intVal(int64(n.asFloat())), Ok("")
	case "round":
		return intVal(int64(math.Round(n.asFloat()))), Ok("")
	case "double":
		return floatVal(n.asFloat()), Ok("")
	default:
		return exprValue{}, Errf("unknown math function %q", name)
	}
}

// operandValue classifies a substitution result: numeric strings become
// numbers so `$a < $b` compares numerically when it can.
func operandValue(s string) exprValue {
	if n, ok := parseNumber(s); ok {
		return n
	}
	return strVal(s)
}

// parseQuotedWordLoose parses a quoted word without requiring a word
// boundary after the close quote (for use inside expressions).
func (p *parser) parseQuotedWordLoose() (string, Result) {
	p.pos++
	var sb strings.Builder
	for !p.done() {
		if p.src[p.pos] == '"' {
			p.pos++
			return sb.String(), Ok("")
		}
		if res := p.substOne(&sb, substAll); res.Code != OK {
			return "", res
		}
	}
	return "", Errf("missing close-quote")
}

// parseBracedWordLoose parses a braced word without the word-boundary check.
func (p *parser) parseBracedWordLoose() (string, Result) {
	depth := 0
	start := p.pos + 1
	for j := p.pos; j < len(p.src); j++ {
		switch p.src[j] {
		case '\\':
			j++
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				word := p.src[start:j]
				p.pos = j + 1
				return word, Ok("")
			}
		}
	}
	return "", Errf("missing close-brace")
}
