package tcl

import "strings"

// The expr AST: a parse-once form of Tcl expressions, cached in
// Interp.exprCache keyed by expression text. The classic evaluator
// (exprParser) re-lexes the expression on every call; the AST keeps the
// operator structure and defers only the value-dependent work — variable
// reads, [command] scripts, quoted-string substitution, truth tests — to
// evaluation. Laziness is preserved exactly as the runtime parser's `eval`
// flag does it: every node is visited on every evaluation with a `taken`
// flag, and untaken nodes skip variable reads, bracket scripts, and
// operator application, while quoted strings substitute regardless (the
// runtime parser substitutes them even on untaken sides, because for
// strings parsing is substitution).
//
// Error timing is the subtle part. The classic evaluator interleaves
// parsing with evaluation, so an evaluation error to the LEFT of a syntax
// error surfaces first — it is reached first in the left-to-right walk.
// Compilation therefore never returns parse errors directly: a parse error
// becomes an errNode evaluated in source position (errors reached later
// stay behind errors raised earlier), deferred checks (close parenthesis,
// trailing garbage) become errAfterNodes that run their operand before
// erroring, and compilation halts at the error exactly where the classic
// parser stopped.

// exprNode is one node of a compiled expression.
type exprNode interface {
	eval(i *Interp, taken bool) (exprValue, Result)
}

// exprAST is a compiled expression.
type exprAST struct{ root exprNode }

func (a *exprAST) run(i *Interp) (exprValue, Result) {
	return a.root.eval(i, true)
}

// compileExpr parses text into an AST.
func compileExpr(text string) *exprAST {
	ec := &exprCompiler{compiler: compiler{parser{src: text}}}
	root := ec.ternary()
	if !ec.halted {
		ec.skipSpace()
		if ec.pos < len(ec.src) {
			// Trailing garbage: the classic parser raises this only after
			// the full expression evaluated without error.
			root = &errAfterNode{inner: root, err: Errf("syntax error in expression %q", text)}
		}
	}
	return &exprAST{root: root}
}

// exprCompiler mirrors exprParser's grammar, producing nodes instead of
// values. It embeds compiler for the script-substitution machinery behind
// quoted strings, variable references, and bracket operands. halted is set
// when compilation hit a parse error or a poisoned embedded script; the
// classic parser never looks past that point, so neither does compilation —
// every level unwinds without consuming further operators.
type exprCompiler struct {
	compiler
	halted bool
}

// fail records a parse error raised at this source position.
func (ec *exprCompiler) fail(res Result) exprNode {
	ec.halted = true
	return errNode{err: res}
}

func (ec *exprCompiler) skipSpace() {
	for ec.pos < len(ec.src) {
		switch ec.src[ec.pos] {
		case ' ', '\t', '\n', '\r':
			ec.pos++
		default:
			return
		}
	}
}

func (ec *exprCompiler) peekOp(ops ...string) string {
	ec.skipSpace()
	return matchExprOp(ec.src[ec.pos:], ops...)
}

func (ec *exprCompiler) ternary() exprNode {
	cond := ec.or()
	if ec.halted || ec.peekOp("?") == "" {
		return cond
	}
	ec.pos++ // consume '?'
	left := ec.ternary()
	if ec.halted {
		return &ternNode{cond: cond, left: left}
	}
	ec.skipSpace()
	if ec.pos >= len(ec.src) || ec.src[ec.pos] != ':' {
		// A nil right arm raises the missing-":" error after the cond and
		// taken arm have evaluated, matching the classic order.
		ec.halted = true
		return &ternNode{cond: cond, left: left}
	}
	ec.pos++
	right := ec.ternary()
	return &ternNode{cond: cond, left: left, right: right}
}

func (ec *exprCompiler) or() exprNode {
	n := ec.and()
	for !ec.halted && ec.peekOp("||") != "" {
		ec.pos += 2
		n = &orNode{lhs: n, rhs: ec.and()}
	}
	return n
}

func (ec *exprCompiler) and() exprNode {
	n := ec.bitOr()
	for !ec.halted && ec.peekOp("&&") != "" {
		ec.pos += 2
		n = &andNode{lhs: n, rhs: ec.bitOr()}
	}
	return n
}

type applyFn func(op string, a, b exprValue) (exprValue, Result)

func (ec *exprCompiler) binaryLevel(next func() exprNode, apply applyFn, ops ...string) exprNode {
	n := next()
	for !ec.halted {
		op := ec.peekOp(ops...)
		if op == "" {
			break
		}
		ec.pos += len(op)
		n = &binNode{op: op, apply: apply, lhs: n, rhs: next()}
	}
	return n
}

func (ec *exprCompiler) bitOr() exprNode {
	return ec.binaryLevel(ec.bitXor, applyIntOp, "|")
}
func (ec *exprCompiler) bitXor() exprNode {
	return ec.binaryLevel(ec.bitAnd, applyIntOp, "^")
}
func (ec *exprCompiler) bitAnd() exprNode {
	return ec.binaryLevel(ec.equality, applyIntOp, "&")
}
func (ec *exprCompiler) equality() exprNode {
	return ec.binaryLevel(ec.relational, applyCompare, "==", "!=")
}
func (ec *exprCompiler) relational() exprNode {
	return ec.binaryLevel(ec.shift, applyCompare, "<=", ">=", "<", ">")
}
func (ec *exprCompiler) shift() exprNode {
	return ec.binaryLevel(ec.additive, applyIntOp, "<<", ">>")
}
func (ec *exprCompiler) additive() exprNode {
	return ec.binaryLevel(ec.multiplicative, applyArith, "+", "-")
}
func (ec *exprCompiler) multiplicative() exprNode {
	return ec.binaryLevel(ec.unaryLevel, applyArith, "*", "/", "%")
}

func (ec *exprCompiler) unaryLevel() exprNode {
	ec.skipSpace()
	if ec.pos < len(ec.src) {
		switch c := ec.src[ec.pos]; c {
		case '-', '+', '!', '~':
			if c == '!' && ec.pos+1 < len(ec.src) && ec.src[ec.pos+1] == '=' {
				break
			}
			ec.pos++
			return &unNode{op: c, operand: ec.unaryLevel()}
		}
	}
	return ec.primary()
}

func (ec *exprCompiler) primary() exprNode {
	ec.skipSpace()
	if ec.pos >= len(ec.src) {
		return ec.fail(Errf("premature end of expression"))
	}
	switch c := ec.src[ec.pos]; {
	case c == '(':
		ec.pos++
		n := ec.ternary()
		if ec.halted {
			return n
		}
		ec.skipSpace()
		if ec.pos >= len(ec.src) || ec.src[ec.pos] != ')' {
			ec.halted = true
			return &errAfterNode{inner: n, err: Errf("looking for close parenthesis")}
		}
		ec.pos++
		return n
	case c == '$':
		seg, n, res, poisoned := ec.compileVarRef()
		if res.Code != OK {
			return ec.fail(res)
		}
		ec.pos += n
		if poisoned {
			ec.halted = true
		}
		if seg.kind == segLiteral {
			// A bare '$' substitutes to itself.
			return litNode{v: strVal(seg.text)}
		}
		return &varNode{seg: seg}
	case c == '[':
		// The untaken side of a lazy operator skips brackets lexically
		// (exprParser.skipBracket); record whether that skip would have
		// succeeded so untaken evaluation can reproduce its error.
		skipP := &exprParser{src: ec.src, pos: ec.pos}
		_, skipRes := skipP.skipBracket()
		ec.pos++
		sub := &compiler{parser{src: ec.src, pos: ec.pos}}
		nested := sub.compile(true)
		switch {
		case nested.doomed():
			ec.halted = true
			ec.pos = nested.end
		case !nested.endAtBracket:
			missing := Errf("missing close-bracket")
			nested.parseErr = &missing
			ec.halted = true
			ec.pos = nested.end
		default:
			ec.pos = nested.end + 1 // consume ']'
		}
		return &bracketNode{script: nested, skipOK: skipRes.Code == OK}
	case c == '"':
		return ec.compileQuotedLoose()
	case c == '{':
		word, res := ec.parseBracedWordLoose()
		if res.Code != OK {
			return ec.fail(res)
		}
		return litNode{v: strVal(word)}
	case c >= '0' && c <= '9' || c == '.':
		v, n, res := scanExprNumber(ec.src, ec.pos)
		ec.pos = n
		if res.Code != OK {
			return ec.fail(res)
		}
		return litNode{v: v}
	case isVarNameChar(c):
		return ec.funcCall()
	default:
		return ec.fail(Errf("syntax error in expression: unexpected %q", string(c)))
	}
}

// compileQuotedLoose compiles a quoted-string operand to its substitution
// segments (the expression form has no word-boundary check after the close
// quote). An unterminated string still substitutes its prefix before the
// missing-close-quote error, matching the classic substitute-as-you-parse
// order.
func (ec *exprCompiler) compileQuotedLoose() exprNode {
	ec.pos++ // consume opening quote
	var b segBuilder
	for !ec.done() {
		if ec.src[ec.pos] == '"' {
			ec.pos++
			w := b.word()
			if w.segs == nil {
				return litNode{v: strVal(w.lit)}
			}
			return &quotedNode{segs: w.segs}
		}
		res, poisoned := ec.compileSubstUnit(&b)
		if res.Code != OK {
			ec.halted = true
			return &errAfterNode{inner: &quotedNode{segs: wordSegs(b.word())}, err: res}
		}
		if poisoned {
			ec.halted = true
			return &quotedNode{segs: wordSegs(b.word())}
		}
	}
	ec.halted = true
	return &errAfterNode{
		inner: &quotedNode{segs: wordSegs(b.word())},
		err:   Errf("missing close-quote"),
	}
}

// funcCall compiles name(arg) math functions and bare boolean words.
func (ec *exprCompiler) funcCall() exprNode {
	start := ec.pos
	for ec.pos < len(ec.src) && isVarNameChar(ec.src[ec.pos]) {
		ec.pos++
	}
	name := ec.src[start:ec.pos]
	ec.skipSpace()
	if ec.pos >= len(ec.src) || ec.src[ec.pos] != '(' {
		switch strings.ToLower(name) {
		case "true", "yes", "on", "false", "no", "off":
			return litNode{v: strVal(name)}
		}
		return ec.fail(Errf("syntax error in expression: unexpected bare word %q", name))
	}
	ec.pos++
	arg := ec.ternary()
	if ec.halted {
		return &funcNode{name: name, arg: arg}
	}
	ec.skipSpace()
	if ec.pos >= len(ec.src) || ec.src[ec.pos] != ')' {
		ec.halted = true
		return &errAfterNode{inner: arg, err: Errf("missing close parenthesis in function call")}
	}
	ec.pos++
	return &funcNode{name: name, arg: arg}
}

// --- nodes --------------------------------------------------------------

// errNode is a parse error in operand position: evaluation raises it when
// the left-to-right walk reaches this point, regardless of takenness.
type errNode struct{ err Result }

func (n errNode) eval(*Interp, bool) (exprValue, Result) { return exprValue{}, n.err }

// errAfterNode is a deferred parse check (close parenthesis, trailing
// garbage, missing close-quote): the operand evaluates first — its errors
// win — then the parse error is raised.
type errAfterNode struct {
	inner exprNode
	err   Result
}

func (n *errAfterNode) eval(i *Interp, taken bool) (exprValue, Result) {
	if _, res := n.inner.eval(i, taken); res.Code != OK {
		return exprValue{}, res
	}
	return exprValue{}, n.err
}

// litNode is a value fixed at compile time: numbers, braced strings, bare
// boolean words, substitution-free quoted strings, and the lone '$'.
type litNode struct{ v exprValue }

func (n litNode) eval(*Interp, bool) (exprValue, Result) { return n.v, Ok("") }

// varNode reads a variable at evaluation time; untaken sides skip the read.
type varNode struct{ seg wordSeg }

func (n *varNode) eval(i *Interp, taken bool) (exprValue, Result) {
	if !taken {
		return intVal(0), Ok("")
	}
	val, res := i.substCompiledSeg(&n.seg)
	if res.Code != OK {
		return exprValue{}, res
	}
	return operandValue(val), Ok("")
}

// bracketNode runs a compiled [command] script; untaken sides skip it but
// reproduce the lexical skip's missing-close-bracket error.
type bracketNode struct {
	script *compiledScript
	skipOK bool
}

func (n *bracketNode) eval(i *Interp, taken bool) (exprValue, Result) {
	if !taken {
		if !n.skipOK {
			return exprValue{}, Errf("missing close-bracket")
		}
		return intVal(0), Ok("")
	}
	out, atBracket := i.runCompiled(n.script)
	if out.Code == Return {
		if !atBracket {
			return exprValue{}, Errf("missing close-bracket")
		}
		return operandValue(out.Value), Ok("")
	}
	if out.Code != OK {
		return exprValue{}, out
	}
	return operandValue(out.Value), Ok("")
}

// quotedNode substitutes a quoted string. The substitution runs even on
// untaken sides — for strings, parsing is substitution in the classic
// evaluator — but the value is discarded there.
type quotedNode struct{ segs []wordSeg }

func (n *quotedNode) eval(i *Interp, taken bool) (exprValue, Result) {
	val, res := i.substSegs(n.segs)
	if res.Code != OK {
		return exprValue{}, res
	}
	if !taken {
		return intVal(0), Ok("")
	}
	return strVal(val), Ok("")
}

type unNode struct {
	op      byte
	operand exprNode
}

func (n *unNode) eval(i *Interp, taken bool) (exprValue, Result) {
	v, res := n.operand.eval(i, taken)
	if res.Code != OK || !taken {
		return v, res
	}
	return applyUnary(n.op, v)
}

type binNode struct {
	op       string
	apply    applyFn
	lhs, rhs exprNode
}

func (n *binNode) eval(i *Interp, taken bool) (exprValue, Result) {
	a, res := n.lhs.eval(i, taken)
	if res.Code != OK {
		return a, res
	}
	b, res := n.rhs.eval(i, taken)
	if res.Code != OK {
		return b, res
	}
	if !taken {
		return a, Ok("")
	}
	return n.apply(n.op, a, b)
}

type orNode struct{ lhs, rhs exprNode }

func (n *orNode) eval(i *Interp, taken bool) (exprValue, Result) {
	v, res := n.lhs.eval(i, taken)
	if res.Code != OK {
		return v, res
	}
	lhs := false
	if taken {
		b, err := v.truth()
		if err != nil {
			return exprValue{}, Errf("%v", err)
		}
		lhs = b
	}
	rhs, res := n.rhs.eval(i, taken && !lhs)
	if res.Code != OK {
		return rhs, res
	}
	if !taken {
		return v, Ok("")
	}
	if lhs {
		return boolVal(true), Ok("")
	}
	b, err := rhs.truth()
	if err != nil {
		return exprValue{}, Errf("%v", err)
	}
	return boolVal(b), Ok("")
}

type andNode struct{ lhs, rhs exprNode }

func (n *andNode) eval(i *Interp, taken bool) (exprValue, Result) {
	v, res := n.lhs.eval(i, taken)
	if res.Code != OK {
		return v, res
	}
	lhs := true
	if taken {
		b, err := v.truth()
		if err != nil {
			return exprValue{}, Errf("%v", err)
		}
		lhs = b
	}
	rhs, res := n.rhs.eval(i, taken && lhs)
	if res.Code != OK {
		return rhs, res
	}
	if !taken {
		return v, Ok("")
	}
	if !lhs {
		return boolVal(false), Ok("")
	}
	b, err := rhs.truth()
	if err != nil {
		return exprValue{}, Errf("%v", err)
	}
	return boolVal(b), Ok("")
}

type ternNode struct{ cond, left, right exprNode }

func (n *ternNode) eval(i *Interp, taken bool) (exprValue, Result) {
	c, res := n.cond.eval(i, taken)
	if res.Code != OK {
		return c, res
	}
	take := false
	if taken {
		b, err := c.truth()
		if err != nil {
			return exprValue{}, Errf("%v", err)
		}
		take = b
	}
	l, res := n.left.eval(i, taken && take)
	if res.Code != OK {
		return l, res
	}
	if n.right == nil {
		// Compilation halted before the ':' was seen; the classic parser
		// raises this after the cond and taken arm evaluated.
		return exprValue{}, Errf(`missing ":" in ternary expression`)
	}
	r, res := n.right.eval(i, taken && !take)
	if res.Code != OK {
		return r, res
	}
	if !taken {
		return intVal(0), Ok("")
	}
	if take {
		return l, Ok("")
	}
	return r, Ok("")
}

type funcNode struct {
	name string
	arg  exprNode
}

func (n *funcNode) eval(i *Interp, taken bool) (exprValue, Result) {
	a, res := n.arg.eval(i, taken)
	if res.Code != OK {
		return a, res
	}
	if !taken {
		return intVal(0), Ok("")
	}
	return applyMathFunc(n.name, a)
}
