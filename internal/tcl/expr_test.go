package tcl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExprArithmetic(t *testing.T) {
	cases := []struct{ expr, want string }{
		{"1+2", "3"},
		{"1 + 2 * 3", "7"},
		{"(1+2)*3", "9"},
		{"10/3", "3"},
		{"10%3", "1"},
		{"-7/2", "-4"}, // Tcl floors toward -inf
		{"-7%2", "1"},  // remainder has divisor's sign
		{"7/-2", "-4"},
		{"2**0", ""}, // placeholder, removed below
		{"1.5+2.5", "4.0"},
		{"1.0/4", "0.25"},
		{"3*1.5", "4.5"},
		{"-5", "-5"},
		{"--5", "5"},
		{"+5", "5"},
		{"!0", "1"},
		{"!3", "0"},
		{"~0", "-1"},
		{"1<<4", "16"},
		{"256>>4", "16"},
		{"5&3", "1"},
		{"5|3", "7"},
		{"5^3", "6"},
		{"0x10", "16"},
		{"0x10+1", "17"},
		{"1e3", "1000.0"},
		{"2.5e-1", "0.25"},
	}
	for _, tc := range cases {
		if tc.expr == "2**0" {
			continue // exponent operator intentionally unsupported (not in 1990 Tcl)
		}
		i := New()
		got, res := i.ExprString(tc.expr)
		if res.Code != OK {
			t.Errorf("expr %q failed: %s", tc.expr, res.Value)
			continue
		}
		if got != tc.want {
			t.Errorf("expr %q = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestExprComparisonAndLogic(t *testing.T) {
	cases := []struct{ expr, want string }{
		{"1 < 2", "1"},
		{"2 < 1", "0"},
		{"2 <= 2", "1"},
		{"3 >= 4", "0"},
		{"1 == 1.0", "1"},
		{"1 != 2", "1"},
		{"1 && 1", "1"},
		{"1 && 0", "0"},
		{"0 || 1", "1"},
		{"0 || 0", "0"},
		{"1 ? 10 : 20", "10"},
		{"0 ? 10 : 20", "20"},
		{"1 < 2 && 2 < 3", "1"},
		{"1 < 2 ? 3+4 : 5+6", "7"},
		{`"abc" == "abc"`, "1"},
		{`"abc" == "abd"`, "0"},
		{`"abc" < "abd"`, "1"},
		{`"10" == 10`, "1"}, // numeric strings compare numerically
		{`" 10" == 10`, "1"},
		{"abs(-4)", "4"},
		{"abs(4.5)", "4.5"},
		{"int(3.9)", "3"},
		{"round(3.5)", "4"},
		{"double(2)", "2.0"},
	}
	for _, tc := range cases {
		i := New()
		got, res := i.ExprString(tc.expr)
		if res.Code != OK {
			t.Errorf("expr %q failed: %s", tc.expr, res.Value)
			continue
		}
		if got != tc.want {
			t.Errorf("expr %q = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestExprSubstitution(t *testing.T) {
	i := New()
	i.SetVar("a", "4")
	i.SetVar("b", "10")
	i.SetVar("s", "yes")
	cases := []struct{ expr, want string }{
		{"$a + $b", "14"},
		{"$a < $b", "1"},
		{"$a*$a", "16"},
		{`$s == "yes"`, "1"},
		{"[llength {a b c}] + 1", "4"},
		{"${a} + 1", "5"},
	}
	for _, tc := range cases {
		got, res := i.ExprString(tc.expr)
		if res.Code != OK {
			t.Errorf("expr %q failed: %s", tc.expr, res.Value)
			continue
		}
		if got != tc.want {
			t.Errorf("expr %q = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestExprLaziness(t *testing.T) {
	i := New()
	evalOK(t, i, `set hits 0; proc bump {} {global hits; incr hits; return 1}`)
	if got := evalOK(t, i, `expr {0 && [bump]}`); got != "0" {
		t.Fatalf("short-circuit && = %q", got)
	}
	if got := evalOK(t, i, `set hits`); got != "0" {
		t.Errorf("&& rhs evaluated %s times, want 0", got)
	}
	if got := evalOK(t, i, `expr {1 || [bump]}`); got != "1" {
		t.Fatalf("short-circuit || = %q", got)
	}
	if got := evalOK(t, i, `set hits`); got != "0" {
		t.Errorf("|| rhs evaluated %s times, want 0", got)
	}
	evalOK(t, i, `expr {1 ? 5 : [bump]}`)
	if got := evalOK(t, i, `set hits`); got != "0" {
		t.Errorf("untaken ternary branch evaluated %s times, want 0", got)
	}
	// Taken branches do evaluate.
	evalOK(t, i, `expr {1 && [bump]}`)
	if got := evalOK(t, i, `set hits`); got != "1" {
		t.Errorf("taken && rhs evaluated %s times, want 1", got)
	}
	// Laziness must also skip unknown variables on the untaken side.
	if got := evalOK(t, i, `expr {1 || $nosuchvar}`); got != "1" {
		t.Errorf("|| with unread var = %q", got)
	}
}

func TestExprErrors(t *testing.T) {
	cases := []struct{ expr, wantSub string }{
		{"1/0", "divide by zero"},
		{"1%0", "divide by zero"},
		{"", "premature end"},
		{"1+", "premature end"},
		{"(1+2", "close parenthesis"},
		{`"abc" + 1`, "non-numeric"},
		{"1 ? 2", `missing ":"`},
		{"foo", "bare word"},
		{"nosuchfunc(1)", "unknown math function"},
		{"1.5 % 2", "floating-point"},
		{"~1.5", "floating-point"},
	}
	for _, tc := range cases {
		i := New()
		_, res := i.ExprString(tc.expr)
		if res.Code != Error {
			t.Errorf("expr %q succeeded, want error %q", tc.expr, tc.wantSub)
			continue
		}
		if !strings.Contains(res.Value, tc.wantSub) {
			t.Errorf("expr %q error = %q, want substring %q", tc.expr, res.Value, tc.wantSub)
		}
	}
}

func TestExprBool(t *testing.T) {
	i := New()
	for _, s := range []string{"1", "3", "-1", "0.5", "true", "yes", "on"} {
		b, res := i.ExprBool(s)
		if res.Code != OK || !b {
			t.Errorf("ExprBool(%q) = %v, %v; want true", s, b, res)
		}
	}
	for _, s := range []string{"0", "0.0", "false", "no", "off"} {
		b, res := i.ExprBool(s)
		if res.Code != OK || b {
			t.Errorf("ExprBool(%q) = %v, %v; want false", s, b, res)
		}
	}
}

// Property: integer arithmetic in expr agrees with Go for +, -, *.
func TestExprIntArithmeticQuick(t *testing.T) {
	i := New()
	f := func(a, b int16) bool {
		for _, op := range []struct {
			sym  string
			gold func(x, y int64) int64
		}{
			{"+", func(x, y int64) int64 { return x + y }},
			{"-", func(x, y int64) int64 { return x - y }},
			{"*", func(x, y int64) int64 { return x * y }},
		} {
			got, res := i.ExprInt(
				"(" + itoa(int64(a)) + ")" + op.sym + "(" + itoa(int64(b)) + ")")
			if res.Code != OK || got != op.gold(int64(a), int64(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int64) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

// Property: floored division/modulo satisfy a = (a/b)*b + a%b with
// 0 <= a%b < |b| sign-matched to b.
func TestExprDivModInvariantQuick(t *testing.T) {
	i := New()
	f := func(a int16, b int16) bool {
		if b == 0 {
			return true
		}
		q, res1 := i.ExprInt(itoa(int64(a)) + "/" + "(" + itoa(int64(b)) + ")")
		r, res2 := i.ExprInt(itoa(int64(a)) + "%" + "(" + itoa(int64(b)) + ")")
		if res1.Code != OK || res2.Code != OK {
			return false
		}
		if q*int64(b)+r != int64(a) {
			return false
		}
		if int64(b) > 0 {
			return r >= 0 && r < int64(b)
		}
		return r <= 0 && r > int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
