package tcl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file is the parser's round-trip fuzz harness: render a compiled
// skeleton (compile.go) back into source text and require the result to
// be a fixpoint — the rendered text must recompile cleanly, re-render to
// itself byte-for-byte, and evaluate identically under the cached and
// classic evaluators. The renderer is deliberately test-only: it proves
// the skeleton retains everything the source said, which is exactly the
// property the eval cache depends on.

// renderScript turns a compiled skeleton back into equivalent source
// text. Trees that embed parse errors (doomed scripts, poisoned or
// partial commands) are not renderable — they encode error *timing*, not
// structure — so ok=false tells the caller to skip.
func renderScript(cs *compiledScript) (string, bool) {
	if cs.doomed() {
		return "", false
	}
	cmds := make([]string, 0, len(cs.cmds))
	for k := range cs.cmds {
		cmd := &cs.cmds[k]
		if cmd.parseErr != nil || cmd.poisoned {
			return "", false
		}
		words := make([]string, 0, len(cmd.words))
		for j := range cmd.words {
			w, ok := renderWord(&cmd.words[j])
			if !ok {
				return "", false
			}
			words = append(words, w)
		}
		cmds = append(cmds, strings.Join(words, " "))
	}
	return strings.Join(cmds, "\n"), true
}

func renderWord(w *compiledWord) (string, bool) {
	if w.segs == nil {
		if w.lit == "" {
			return "{}", true
		}
		return escapeLiteral(w.lit), true
	}
	return renderSegs(w.segs)
}

func renderSegs(segs []wordSeg) (string, bool) {
	var sb strings.Builder
	for k := range segs {
		s, ok := renderSeg(&segs[k])
		if !ok {
			return "", false
		}
		sb.WriteString(s)
	}
	return sb.String(), true
}

func renderSeg(seg *wordSeg) (string, bool) {
	switch seg.kind {
	case segLiteral:
		return escapeLiteral(seg.text), true
	case segVar:
		// ${name} is the one spelling that round-trips every name; a name
		// containing '}' has no such spelling.
		if strings.IndexByte(seg.text, '}') >= 0 {
			return "", false
		}
		return "${" + seg.text + "}", true
	case segVarArr:
		idx, ok := renderSegs(seg.index)
		if !ok {
			return "", false
		}
		return "$" + seg.text + "(" + idx + ")", true
	case segScript:
		if seg.script.doomed() || !seg.script.endAtBracket {
			return "", false
		}
		body, ok := renderScript(seg.script)
		if !ok {
			return "", false
		}
		return "[" + body + "]", true
	}
	return "", false
}

// escapeLiteral spells literal text so the parser reads back exactly
// these bytes: every structurally meaningful byte is backslash-escaped
// (backslashSubst returns unknown escaped bytes verbatim), and the three
// whitespace bytes with named escapes use those, since a raw newline
// would end the command instead.
func escapeLiteral(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch ch := s[i]; ch {
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		case '\n':
			sb.WriteString(`\n`)
		case ' ', ';', '[', ']', '$', '\\', '"', '{', '}', '(', ')', '#':
			sb.WriteByte('\\')
			sb.WriteByte(ch)
		default:
			sb.WriteByte(ch)
		}
	}
	return sb.String()
}

// FuzzParseRoundTrip: for any input that parses cleanly, rendering the
// skeleton must produce source that (1) recompiles without a parse
// error, (2) is a render fixpoint — render(compile(r)) == r — and
// (3) evaluates identically under the cached and classic evaluators.
// A failure in (1) or (2) means the skeleton dropped or distorted
// structure; a failure in (3) means the two evaluators disagree about a
// script whose structure is fully known — the sharpest divergence the
// eval-cache axis of the conformance harness can hope to find.
func FuzzParseRoundTrip(f *testing.F) {
	// The shipped scripts are the richest clean inputs we have: real
	// control flow, quoted prompts, bracket substitutions, comments.
	exps, _ := filepath.Glob(filepath.Join("..", "..", "scripts", "*.exp"))
	for _, path := range exps {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
	}
	for _, s := range []string{
		`set a(x y) [list 1 {2 3}]; set a(x\ y)`,
		`puts "braced { and \[bracket\] and $dollar"`,
		`proc p {a {b 2}} { expr {$a + $b} }; p 40`,
		"set x {multi\nline\tbody}; string length $x",
		`set i 0; while {$i < 3} {incr i; # comment
}; set i`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, script string) {
		if len(script) > 1024 {
			t.Skip("bounded script size")
		}
		if hasLongDigitRun(script, 8) {
			t.Skip("pathological numeric literal")
		}
		r1, ok := renderScript(compileScript(script, false))
		if !ok {
			t.Skip("input embeds a parse error; error timing is the eval-parity fuzzer's job")
		}
		cs2 := compileScript(r1, false)
		r2, ok := renderScript(cs2)
		if !ok {
			t.Fatalf("rendered script no longer parses cleanly:\nsource:   %q\nrendered: %q", script, r1)
		}
		if r2 != r1 {
			t.Fatalf("render is not a fixpoint:\nsource: %q\nr1:     %q\nr2:     %q", script, r1, r2)
		}

		var outA, outB strings.Builder
		cached := fuzzInterp(DefaultEvalCacheSize, &outA)
		classic := fuzzInterp(0, &outB)
		valA, errA := cached.Eval(r1)
		valB, errB := classic.Eval(r1)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error presence diverged on rendered form: cached=%v classic=%v r1=%q", errA, errB, r1)
		}
		if errA != nil && errA.Error() != errB.Error() {
			t.Fatalf("error text diverged on rendered form:\ncached:  %s\nclassic: %s\nr1=%q", errA, errB, r1)
		}
		if valA != valB {
			t.Fatalf("result diverged on rendered form: cached=%q classic=%q r1=%q", valA, valB, r1)
		}
		if outA.String() != outB.String() {
			t.Fatalf("output diverged on rendered form:\ncached:  %q\nclassic: %q\nr1=%q", outA.String(), outB.String(), r1)
		}
	})
}
