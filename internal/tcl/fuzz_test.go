package tcl

import (
	"strings"
	"testing"
)

// fuzzInterp builds an interpreter hardened for differential fuzzing:
// output captured, step-bounded, and with every command that touches the
// process or filesystem (or reports wall-clock time, which would differ
// between the two runs by construction) removed.
func fuzzInterp(cacheSize int, out *strings.Builder) *Interp {
	i := New()
	i.SetEvalCacheSize(cacheSize)
	i.Stdout = out
	i.Stderr = out
	i.StepLimit = 4000
	for _, name := range []string{"exec", "source", "cd", "gets", "exit", "pwd", "time"} {
		i.Unregister(name)
	}
	return i
}

// FuzzEvalCacheEquivalence feeds the same script to a cache-enabled and a
// cache-disabled interpreter and requires identical results: same value,
// same error text, same output, same step count. The compiled fast path
// (compile.go) and the classic parser (parse.go) are independent
// implementations of the same language, so any divergence is a bug in one
// of them — this is the differential driver behind the conformance
// harness's eval-cache axis.
func FuzzEvalCacheEquivalence(f *testing.F) {
	for _, s := range []string{
		`set a 5; while {$a > 0} {incr a -1}; set a`,
		`proc fib {n} { if {$n < 2} { return $n }; expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]} }; fib 9`,
		`foreach x {1 2 3} { puts "item $x" }`,
		`catch {error boom} msg; set msg`,
		`set l [list a b c]; lappend l "d e"; llength $l`,
		`switch -glob ab* {a* {format star} default {format none}}`,
		`expr {3.5 * 2 + (7 % 3)}`,
		`string match {[a-c]?} bz`,
		`subst {nested [expr {1+1}] $tcl_version}`,
		`while 1 {}`,
		`unknown_command_xyz 1 2`,
		"set x {unbalanced",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, script string) {
		if len(script) > 1024 {
			t.Skip("bounded script size")
		}
		// Long digit runs turn into huge format widths / loop counts that
		// can exhaust memory before the step limit can bite.
		if hasLongDigitRun(script, 8) {
			t.Skip("pathological numeric literal")
		}
		var outA, outB strings.Builder
		cached := fuzzInterp(DefaultEvalCacheSize, &outA)
		classic := fuzzInterp(0, &outB)

		valA, errA := cached.Eval(script)
		valB, errB := classic.Eval(script)

		if (errA == nil) != (errB == nil) {
			t.Fatalf("error presence diverged: cached=%v classic=%v script=%q", errA, errB, script)
		}
		if errA != nil && errA.Error() != errB.Error() {
			t.Fatalf("error text diverged:\ncached:  %s\nclassic: %s\nscript=%q", errA, errB, script)
		}
		if valA != valB {
			t.Fatalf("result diverged: cached=%q classic=%q script=%q", valA, valB, script)
		}
		if outA.String() != outB.String() {
			t.Fatalf("output diverged:\ncached:  %q\nclassic: %q\nscript=%q", outA.String(), outB.String(), script)
		}
		if sa, sb := cached.Steps(), classic.Steps(); sa != sb {
			t.Fatalf("step count diverged: cached=%d classic=%d script=%q", sa, sb, script)
		}
	})
}

func hasLongDigitRun(s string, n int) bool {
	run := 0
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			if run++; run >= n {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}
