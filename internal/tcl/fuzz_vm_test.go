package tcl

import (
	"strings"
	"testing"
)

// fuzzModeInterp is fuzzInterp with an eval-mode axis: same hardening
// (captured output, step bound, no process/filesystem/clock commands),
// plus the requested evaluation engine.
func fuzzModeInterp(mode EvalMode, out *strings.Builder) *Interp {
	i := fuzzInterp(DefaultEvalCacheSize, out)
	i.SetEvalMode(mode)
	return i
}

// FuzzVMEquivalence is the three-way differential driver behind the vm:
// the same script runs under the classic walker (the frozen referee), the
// cached skeleton evaluator, and the register bytecode vm, and all three
// must agree on value, error text, captured output, and step count. The
// bytecode compiler, the skeleton compiler, and the classic parser are
// three independent implementations of the same language, so any
// divergence is a bug in one of them. Each script also runs twice in the
// vm interpreter so warm inline caches and memoized programs are fuzzed,
// not just the cold compile.
func FuzzVMEquivalence(f *testing.F) {
	for _, s := range []string{
		// The FuzzEvalCacheEquivalence seeds.
		`set a 5; while {$a > 0} {incr a -1}; set a`,
		`proc fib {n} { if {$n < 2} { return $n }; expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]} }; fib 9`,
		`foreach x {1 2 3} { puts "item $x" }`,
		`catch {error boom} msg; set msg`,
		`set l [list a b c]; lappend l "d e"; llength $l`,
		`switch -glob ab* {a* {format star} default {format none}}`,
		`expr {3.5 * 2 + (7 % 3)}`,
		`string match {[a-c]?} bz`,
		`subst {nested [expr {1+1}] $tcl_version}`,
		`while 1 {}`,
		`unknown_command_xyz 1 2`,
		"set x {unbalanced",
		// vm-specific seeds: specialized opcodes, inline-cache churn,
		// lazy expression operators, and the native-value channel.
		`set t 0; foreach n {1 2 3 4} { if {$n % 2} { incr t $n } else { set t [expr {$t * 2}] } }; set t`,
		`rename set s2; s2 a 1; rename s2 set; set a`,
		`proc incr {v args} { return shadowed }; incr q`,
		`set a 0x10; set b [set a]; expr {$a == $b}`,
		`expr {1 ? [expr {2 + 3}] : [die]}`,
		`expr {0 && 1/0}`,
		`set x 21; set y 3; expr {($x * 2 + 100 / $y) > 50 && $x % 7 <= 3 || !($y == 3)}`,
		`set n v; set $n 9; incr $n; set v`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, script string) {
		if len(script) > 1024 {
			t.Skip("bounded script size")
		}
		if hasLongDigitRun(script, 8) {
			t.Skip("pathological numeric literal")
		}
		var outC, outK, outV strings.Builder
		classic := fuzzModeInterp(EvalClassic, &outC)
		cached := fuzzModeInterp(EvalCached, &outK)
		vmi := fuzzModeInterp(EvalVM, &outV)

		valC, errC := classic.Eval(script)
		valK, errK := cached.Eval(script)
		valV, errV := vmi.Eval(script)

		check := func(mode string, val string, err error, out string, steps int64) {
			if (errC == nil) != (err == nil) {
				t.Fatalf("%s error presence diverged: classic=%v %s=%v script=%q", mode, errC, mode, err, script)
			}
			if errC != nil && errC.Error() != err.Error() {
				t.Fatalf("%s error text diverged:\nclassic: %s\n%s: %s\nscript=%q", mode, errC, mode, err, script)
			}
			if valC != val {
				t.Fatalf("%s result diverged: classic=%q %s=%q script=%q", mode, valC, mode, val, script)
			}
			if outC.String() != out {
				t.Fatalf("%s output diverged:\nclassic: %q\n%s: %q\nscript=%q", mode, outC.String(), mode, out, script)
			}
			if sc := classic.Steps(); sc != steps {
				t.Fatalf("%s step count diverged: classic=%d %s=%d script=%q", mode, sc, mode, steps, script)
			}
		}
		check("cached", valK, errK, outK.String(), cached.Steps())
		check("vm", valV, errV, outV.String(), vmi.Steps())

		// Warm pass: a second vm interpreter runs the script twice so the
		// memoized programs and primed inline caches face the same check.
		// The referee reruns too — scripts are not idempotent.
		var outC2, outV2 strings.Builder
		classic2 := fuzzModeInterp(EvalClassic, &outC2)
		vmi2 := fuzzModeInterp(EvalVM, &outV2)
		classic2.Eval(script)
		vmi2.Eval(script)
		classic2.ResetSteps()
		vmi2.ResetSteps()
		outC2.Reset()
		outV2.Reset()
		valC2, errC2 := classic2.Eval(script)
		valV2, errV2 := vmi2.Eval(script)
		if (errC2 == nil) != (errV2 == nil) || valC2 != valV2 || outC2.String() != outV2.String() ||
			classic2.Steps() != vmi2.Steps() {
			t.Fatalf("warm vm run diverged: classic=%q/%v/%q/%d vm=%q/%v/%q/%d script=%q",
				valC2, errC2, outC2.String(), classic2.Steps(),
				valV2, errV2, outV2.String(), vmi2.Steps(), script)
		}
		if errC2 != nil && errV2 != nil && errC2.Error() != errV2.Error() {
			t.Fatalf("warm vm error text diverged:\nclassic: %s\nvm: %s\nscript=%q", errC2, errV2, script)
		}
	})
}
