package tcl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExecCommand(t *testing.T) {
	i := New()
	if got := evalOK(t, i, `exec echo hello world`); got != "hello world" {
		t.Errorf("exec echo = %q", got)
	}
	// Command substitution around exec, as in callback.exp's `exec sleep`.
	if got := evalOK(t, i, `set out [exec echo nested]; set out`); got != "nested" {
		t.Errorf("exec in brackets = %q", got)
	}
}

func TestExecErrors(t *testing.T) {
	i := New()
	_, err := i.Eval(`exec /no/such/binary`)
	if err == nil || !strings.Contains(err.Error(), "couldn't execute") {
		t.Errorf("exec missing binary: %v", err)
	}
	_, err = i.Eval(`exec sh -c "echo oops >&2; exit 3"`)
	if err == nil || !strings.Contains(err.Error(), "oops") {
		t.Errorf("exec nonzero: %v", err)
	}
}

func TestSourceFile(t *testing.T) {
	i := New()
	path := filepath.Join(t.TempDir(), "lib.tcl")
	if err := os.WriteFile(path, []byte("proc fromfile {} {return sourced}\nset loaded 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	evalOK(t, i, "source "+path)
	if got := evalOK(t, i, `fromfile`); got != "sourced" {
		t.Errorf("sourced proc = %q", got)
	}
	if got := evalOK(t, i, `set loaded`); got != "1" {
		t.Errorf("loaded = %q", got)
	}
	_, err := i.Eval(`source /no/such/file.tcl`)
	if err == nil || !strings.Contains(err.Error(), "couldn't read file") {
		t.Errorf("source missing: %v", err)
	}
}

func TestSourceReturnStopsFile(t *testing.T) {
	i := New()
	path := filepath.Join(t.TempDir(), "early.tcl")
	os.WriteFile(path, []byte("set a 1\nreturn done\nset a 2\n"), 0o644)
	got := evalOK(t, i, "source "+path)
	if got != "done" {
		t.Errorf("source result = %q", got)
	}
	if v := evalOK(t, i, "set a"); v != "1" {
		t.Errorf("a = %q, return did not stop the file", v)
	}
}

func TestPwdAndCd(t *testing.T) {
	i := New()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(orig)
	dir := t.TempDir()
	evalOK(t, i, "cd "+dir)
	got := evalOK(t, i, "pwd")
	// TempDir may be a symlink (e.g. /tmp on some hosts); compare resolved.
	want, _ := filepath.EvalSymlinks(dir)
	gotR, _ := filepath.EvalSymlinks(got)
	if gotR != want {
		t.Errorf("pwd = %q, want %q", gotR, want)
	}
	_, err = i.Eval(`cd /no/such/dir`)
	if err == nil {
		t.Error("cd to missing dir succeeded")
	}
}

func TestTimeCommand(t *testing.T) {
	i := New()
	got := evalOK(t, i, `time {set x 1} 10`)
	if !strings.Contains(got, "microseconds per iteration") {
		t.Errorf("time = %q", got)
	}
	if _, err := i.Eval(`time {nosuchcmd} 2`); err == nil {
		t.Error("time swallowed an error")
	}
	if _, err := i.Eval(`time {set x 1} zero`); err == nil {
		t.Error("time accepted a bad count")
	}
}

func TestPidCommand(t *testing.T) {
	i := New()
	got := evalOK(t, i, `pid`)
	if got == "" || got == "0" {
		t.Errorf("pid = %q", got)
	}
}

func TestGlobalSetGet(t *testing.T) {
	i := New()
	i.GlobalSet("g", "top")
	if v, ok := i.GlobalGet("g"); !ok || v != "top" {
		t.Errorf("GlobalGet = %q, %v", v, ok)
	}
	// Visible from inside a proc via global.
	if got := evalOK(t, i, `proc f {} {global g; set g}; f`); got != "top" {
		t.Errorf("global from proc = %q", got)
	}
	// GlobalSet from a nested frame writes frame 0.
	evalOK(t, i, `proc g2 {} {set g local-shadow}; g2`)
	if v, _ := i.GlobalGet("g"); v != "top" {
		t.Errorf("global clobbered by proc local: %q", v)
	}
	if _, ok := i.GlobalGet("missing-var"); ok {
		t.Error("GlobalGet found a missing variable")
	}
}

func TestUnregisterAndLookup(t *testing.T) {
	i := New()
	i.Register("gadget", func(in *Interp, args []string) Result { return Ok("gadget!") })
	if got := evalOK(t, i, `gadget`); got != "gadget!" {
		t.Errorf("custom command = %q", got)
	}
	if !i.Unregister("gadget") {
		t.Error("Unregister said command missing")
	}
	if i.Unregister("gadget") {
		t.Error("double Unregister succeeded")
	}
	if _, err := i.Eval(`gadget`); err == nil {
		t.Error("command usable after Unregister")
	}
	evalOK(t, i, `proc known {} {}`)
	if _, ok := i.LookupProc("known"); !ok {
		t.Error("LookupProc missed a defined proc")
	}
	if _, ok := i.LookupProc("unknown"); ok {
		t.Error("LookupProc found a ghost")
	}
}

func TestCodeString(t *testing.T) {
	for code, want := range map[Code]string{
		OK: "ok", Error: "error", Return: "return",
		Break: "break", Continue: "continue", Code(99): "code-99",
	} {
		if got := code.String(); got != want {
			t.Errorf("Code(%d).String() = %q, want %q", int(code), got, want)
		}
	}
}

func TestRenameBuiltinAndDelete(t *testing.T) {
	i := New()
	evalOK(t, i, `rename puts old_puts`)
	if _, err := i.Eval(`puts hi`); err == nil {
		t.Error("puts usable after rename")
	}
	var buf strings.Builder
	i.Stdout = &buf
	evalOK(t, i, `old_puts hi`)
	if buf.String() != "hi\n" {
		t.Errorf("renamed builtin output %q", buf.String())
	}
	// Rename to "" deletes.
	evalOK(t, i, `rename old_puts ""`)
	if _, err := i.Eval(`old_puts hi`); err == nil {
		t.Error("deleted command still runs")
	}
	if _, err := i.Eval(`rename never-existed x`); err == nil {
		t.Error("rename of missing command succeeded")
	}
}

func TestUplevelAbsoluteLevels(t *testing.T) {
	i := New()
	got := evalOK(t, i, `
		proc outer {} { inner }
		proc inner {} { uplevel #0 {set topvar 42}; return ok }
		outer
		set topvar
	`)
	if got != "42" {
		t.Errorf("uplevel #0 = %q", got)
	}
	// uplevel 2 from depth 2 reaches the top.
	got = evalOK(t, i, `
		proc a {} { b }
		proc b {} { uplevel 2 {set deepvar 7} }
		a
		set deepvar
	`)
	if got != "7" {
		t.Errorf("uplevel 2 = %q", got)
	}
}

func TestInfoMoreOptions(t *testing.T) {
	i := New()
	evalOK(t, i, `set v1 x; set v2 y`)
	vars := evalOK(t, i, `info globals v*`)
	if !strings.Contains(vars, "v1") || !strings.Contains(vars, "v2") {
		t.Errorf("info globals = %q", vars)
	}
	locals := evalOK(t, i, `proc f {a} {set b 2; info locals}; f 1`)
	if !strings.Contains(locals, "a") || !strings.Contains(locals, "b") {
		t.Errorf("info locals = %q", locals)
	}
	if got := evalOK(t, i, `info tclversion`); got == "" {
		t.Error("no tclversion")
	}
	if _, err := i.Eval(`info nonsense`); err == nil {
		t.Error("info accepted a bad option")
	}
	if _, err := i.Eval(`info body nosuchproc`); err == nil {
		t.Error("info body of missing proc succeeded")
	}
	// info exists on an array name without parens.
	evalOK(t, i, `set arr(k) v`)
	if got := evalOK(t, i, `info exists arr`); got != "1" {
		t.Errorf("info exists arr = %q", got)
	}
}

func TestArrayGetAndErrors(t *testing.T) {
	i := New()
	evalOK(t, i, `array set a {x 1 y 2}`)
	if got := evalOK(t, i, `array get a`); got != "x 1 y 2" {
		t.Errorf("array get = %q", got)
	}
	if got := evalOK(t, i, `array names a x*`); got != "x" {
		t.Errorf("array names filter = %q", got)
	}
	if got := evalOK(t, i, `array size nothere`); got != "0" {
		t.Errorf("array size missing = %q", got)
	}
	if _, err := i.Eval(`array set a {odd}`); err == nil {
		t.Error("array set with odd list succeeded")
	}
	if _, err := i.Eval(`array frobnicate a`); err == nil {
		t.Error("array accepted a bad option")
	}
}

func TestErrorInfoVariable(t *testing.T) {
	i := New()
	if _, err := i.Eval(`proc f {} {error boom}; f`); err == nil {
		t.Fatal("no error")
	}
	info, ok := i.GlobalGet("errorInfo")
	if !ok || !strings.Contains(info, "boom") {
		t.Errorf("errorInfo = %q", info)
	}
	// catch-ed errors can read it too via the message argument instead.
	if got := evalOK(t, i, `catch {error whoops} m; set m`); got != "whoops" {
		t.Errorf("catch message = %q", got)
	}
}
