package tcl

import (
	"strings"
)

// Tcl lists are strings with shell-like element quoting: elements are
// separated by whitespace, braces group (and nest), double quotes group,
// and backslashes escape. ParseList and FormList are the round-trip pair
// (Tcl_SplitList / Tcl_Merge in the C implementation).

// ParseList splits a Tcl list string into its elements.
func ParseList(s string) ([]string, error) {
	var elems []string
	i := 0
	n := len(s)
	for {
		for i < n && isListSpace(s[i]) {
			i++
		}
		if i >= n {
			return elems, nil
		}
		switch s[i] {
		case '{':
			depth := 1
			j := i + 1
			var sb strings.Builder
			for j < n && depth > 0 {
				switch s[j] {
				case '\\':
					if j+1 < n {
						sb.WriteByte(s[j])
						sb.WriteByte(s[j+1])
						j += 2
						continue
					}
					depth = -1
				case '{':
					depth++
					if depth > 1 {
						sb.WriteByte('{')
					}
					j++
					continue
				case '}':
					depth--
					if depth > 0 {
						sb.WriteByte('}')
					}
					j++
					continue
				}
				if depth > 0 {
					sb.WriteByte(s[j])
					j++
				}
			}
			if depth != 0 {
				return nil, &TclError{Message: "unmatched open brace in list"}
			}
			if j < n && !isListSpace(s[j]) {
				return nil, &TclError{Message: "list element in braces followed by extra characters"}
			}
			elems = append(elems, sb.String())
			i = j
		case '"':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				switch s[j] {
				case '\\':
					if j+1 < n {
						rep, k := backslashSubst(s[j:])
						sb.WriteString(rep)
						j += k
						continue
					}
					sb.WriteByte('\\')
					j++
				case '"':
					closed = true
					j++
				default:
					sb.WriteByte(s[j])
					j++
				}
				if closed {
					break
				}
			}
			if !closed {
				return nil, &TclError{Message: "unmatched open quote in list"}
			}
			if j < n && !isListSpace(s[j]) {
				return nil, &TclError{Message: "list element in quotes followed by extra characters"}
			}
			elems = append(elems, sb.String())
			i = j
		default:
			j := i
			var sb strings.Builder
			for j < n && !isListSpace(s[j]) {
				if s[j] == '\\' && j+1 < n {
					rep, k := backslashSubst(s[j:])
					sb.WriteString(rep)
					j += k
					continue
				}
				sb.WriteByte(s[j])
				j++
			}
			elems = append(elems, sb.String())
			i = j
		}
	}
}

func isListSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// FormList joins elements into a canonical Tcl list string, quoting each
// element as needed so ParseList recovers the originals exactly.
func FormList(elems []string) string {
	var sb strings.Builder
	for i, e := range elems {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(QuoteElement(e))
	}
	return sb.String()
}

// QuoteElement renders one string as a single Tcl list element.
func QuoteElement(e string) string {
	if e == "" {
		return "{}"
	}
	if !needsQuoting(e) {
		return e
	}
	if bracesBalanced(e) && !strings.HasSuffix(e, "\\") {
		return "{" + e + "}"
	}
	// Fall back to backslash quoting.
	var sb strings.Builder
	for i := 0; i < len(e); i++ {
		c := e[i]
		switch c {
		case ' ', '\t', '"', '\\', '{', '}', '[', ']', '$', ';':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\f':
			sb.WriteString(`\f`)
		case '\v':
			sb.WriteString(`\v`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

func needsQuoting(e string) bool {
	for i := 0; i < len(e); i++ {
		switch e[i] {
		case ' ', '\t', '\n', '\r', '\v', '\f', '"', '\\', '{', '}', '[', ']', '$', ';':
			return true
		}
	}
	return false
}

func bracesBalanced(e string) bool {
	depth := 0
	for i := 0; i < len(e); i++ {
		switch e[i] {
		case '\\':
			i++
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0
}
