package tcl

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"a", []string{"a"}},
		{"a b c", []string{"a", "b", "c"}},
		{"  a   b  ", []string{"a", "b"}},
		{"{a b} c", []string{"a b", "c"}},
		{"{a {b c}} d", []string{"a {b c}", "d"}},
		{`"a b" c`, []string{"a b", "c"}},
		{`a\ b c`, []string{"a b", "c"}},
		{"{}", []string{""}},
		{`""`, []string{""}},
		{"a\nb\tc", []string{"a", "b", "c"}},
		{`\{ \}`, []string{"{", "}"}},
		{`"x\ty"`, []string{"x\ty"}},
	}
	for _, tc := range cases {
		got, err := ParseList(tc.in)
		if err != nil {
			t.Errorf("ParseList(%q) error: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseList(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

func TestParseListErrors(t *testing.T) {
	for _, in := range []string{"{a", `"a`, "{a} b {"} {
		if _, err := ParseList(in); err == nil {
			t.Errorf("ParseList(%q) succeeded, want error", in)
		}
	}
}

func TestFormListRoundTrip(t *testing.T) {
	cases := [][]string{
		{"a", "b"},
		{"a b", "c"},
		{""},
		{"", "", ""},
		{"{", "}"},
		{"a{b", "c}d"},
		{`back\slash`},
		{"new\nline"},
		{"tab\there"},
		{"$dollar", "[bracket]", ";semi"},
		{"plain", "with space", "{braced}", `"quoted"`},
	}
	for _, elems := range cases {
		s := FormList(elems)
		got, err := ParseList(s)
		if err != nil {
			t.Errorf("round trip of %#v: ParseList(%q) error %v", elems, s, err)
			continue
		}
		if len(got) == 0 && len(elems) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, elems) {
			t.Errorf("round trip of %#v via %q = %#v", elems, s, got)
		}
	}
}

// Property: FormList/ParseList round-trips arbitrary strings.
func TestListRoundTripQuick(t *testing.T) {
	f := func(elems []string) bool {
		if len(elems) == 0 {
			return true
		}
		s := FormList(elems)
		got, err := ParseList(s)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, elems)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestListCommands(t *testing.T) {
	cases := []struct{ script, want string }{
		{`list a b c`, "a b c"},
		{`list "a b" c`, "{a b} c"},
		{`list`, ""},
		{`lindex {a b c} 0`, "a"},
		{`lindex {a b c} 2`, "c"},
		{`lindex {a b c} end`, "c"},
		{`lindex {a b c} end-1`, "b"},
		{`lindex {a b c} 5`, ""},
		{`lindex {a {b c} d} 1`, "b c"},
		{`llength {}`, "0"},
		{`llength {a b c}`, "3"},
		{`llength {a {b c}}`, "2"},
		{`set l {a}; lappend l b c; set l`, "a b c"},
		{`set l {}; lappend l "x y"; set l`, "{x y}"},
		{`lappend newvar a; set newvar`, "a"},
		{`linsert {a c} 1 b`, "a b c"},
		{`linsert {a b} 0 z`, "z a b"},
		{`linsert {a b} end x`, "a x b"},
		{`lrange {a b c d} 1 2`, "b c"},
		{`lrange {a b c d} 0 end`, "a b c d"},
		{`lrange {a b c d} 2 0`, ""},
		{`lreplace {a b c d} 1 2 X Y Z`, "a X Y Z d"},
		{`lreplace {a b c} 0 0`, "b c"},
		{`lsearch {a b c} b`, "1"},
		{`lsearch {a b c} z`, "-1"},
		{`lsearch -exact {a* b} a*`, "0"},
		{`lsearch -glob {foo bar} b*`, "1"},
		{`lsearch -regexp {foo bar} ^b`, "1"},
		{`lsort {c a b}`, "a b c"},
		{`lsort -decreasing {c a b}`, "c b a"},
		{`lsort -integer {10 9 2}`, "2 9 10"},
		{`lsort -real {1.5 0.2 10.0}`, "0.2 1.5 10.0"},
		{`concat a {b c} d`, "a b c d"},
		{`concat {a b} {}`, "a b"},
		{`join {a b c} -`, "a-b-c"},
		{`join {a b c}`, "a b c"},
		{`split a:b:c :`, "a b c"},
		{`split "a,b;c" ",;"`, "a b c"},
		{`split abc {}`, "a b c"},
		{`split {a b} { }`, "a b"},
		{`llength [split "x  y" { }]`, "3"}, // empty element between doubles
	}
	for _, tc := range cases {
		i := New()
		got := evalOK(t, i, tc.script)
		if got != tc.want {
			t.Errorf("Eval(%q) = %q, want %q", tc.script, got, tc.want)
		}
	}
}

func TestStringCommands(t *testing.T) {
	cases := []struct{ script, want string }{
		{`string length hello`, "5"},
		{`string length {}`, "0"},
		{`string index hello 1`, "e"},
		{`string index hello 99`, ""},
		{`string range hello 1 3`, "ell"},
		{`string range hello 1 end`, "ello"},
		{`string compare a b`, "-1"},
		{`string compare b a`, "1"},
		{`string compare a a`, "0"},
		{`string equal a a`, "1"},
		{`string match *ell* hello`, "1"},
		{`string match *xyz* hello`, "0"},
		{`string match {h[aeiou]llo} hello`, "1"},
		{`string first ll hello`, "2"},
		{`string first zz hello`, "-1"},
		{`string last l hello`, "3"},
		{`string tolower HeLLo`, "hello"},
		{`string toupper HeLLo`, "HELLO"},
		{`string trim "  hi  "`, "hi"},
		{`string trimleft "  hi  "`, "hi  "},
		{`string trimright xxhixx x`, "xxhi"},
		{`string repeat ab 3`, "ababab"},
		{`string reverse abc`, "cba"},
		{`format %d 42`, "42"},
		{`format %5d 42`, "   42"},
		{`format %-5d| 42`, "42   |"},
		{`format %05d 42`, "00042"},
		{`format %x 255`, "ff"},
		{`format %X 255`, "FF"},
		{`format %o 8`, "10"},
		{`format %c 65`, "A"},
		{`format %s-%s a b`, "a-b"},
		{`format %.2f 3.14159`, "3.14"},
		{`format %e 12345.678`, "1.234568e+04"},
		{`format %% `, "%"},
		{`format %ld 9`, "9"},
		{`scan "42 hello" "%d %s" n s; list $n $s`, "42 hello"},
		{`scan abc %c c; set c`, "97"},
		{`scan " 3.5x" %f f; set f`, "3.5"},
		{`scan ff %x h; set h`, "255"},
		{`scan "a=5" "a=%d" v; set v`, "5"},
		{`scan "1 2 3" "%d %d" a b`, "2"},
		{`regexp {h.llo} hello`, "1"},
		{`regexp {^x} hello`, "0"},
		{`regexp {l(l.)} hello whole sub; list $whole $sub`, "llo lo"},
		{`regexp -nocase HELLO hello`, "1"},
		{`regsub l hello L out; set out`, "heLlo"},
		{`regsub -all l hello L out; set out`, "heLLo"},
		{`regsub {(e)(l)} hello {\2\1} out; set out`, "hlelo"},
		{`regsub -all l hello & out; set out`, "hello"},
		{`regsub x hello y out`, "0"},
	}
	for _, tc := range cases {
		i := New()
		got := evalOK(t, i, tc.script)
		if got != tc.want {
			t.Errorf("Eval(%q) = %q, want %q", tc.script, got, tc.want)
		}
	}
}
