package tcl

import (
	"fmt"
	"strings"
)

// The parser implements classic Tcl evaluation: a script is a sequence of
// commands separated by newlines or semicolons; each command is a sequence
// of words; words are produced by brace quoting (no substitution), double
// quoting (substitution, grouping), or bare text (substitution, no
// grouping). Substitution is dollar (variables), bracket (nested command
// evaluation), and backslash. Scripts are parsed as they are evaluated,
// exactly as in Tcl 2.x/6.x.

type parser struct {
	interp *Interp
	src    string
	pos    int
}

// substitution selection for substInto.
type substMode int

const (
	substBackslash substMode = 1 << iota
	substDollar
	substBracket
	substAll = substBackslash | substDollar | substBracket
)

// scriptOutcome couples a completion Result with how far the parser got, so
// bracket substitution can resume after the matching ']'.
type scriptOutcome struct {
	Result
	end int // index just past the last consumed byte of src
}

// evalScript evaluates src (the whole parser buffer) starting at pos 0.
// When bracketed is true, evaluation stops at an unquoted ']' (the script is
// the inside of a command substitution) and the ']' is not consumed.
func (i *Interp) evalScript(script string, bracketed bool) scriptOutcome {
	p := &parser{interp: i, src: script}
	return p.run(bracketed)
}

func (p *parser) run(bracketed bool) scriptOutcome {
	last := Ok("")
	for {
		p.skipCommandSeparators()
		if p.done() {
			return scriptOutcome{last, p.pos}
		}
		if bracketed && p.src[p.pos] == ']' {
			return scriptOutcome{last, p.pos}
		}
		if p.src[p.pos] == '#' {
			p.skipComment()
			continue
		}
		words, out, terminated := p.parseCommand(bracketed)
		if out.Code != OK {
			out.end = p.pos
			return out
		}
		if len(words) > 0 {
			res := p.interp.EvalWords(words)
			if res.Code != OK {
				if res.Code == Error {
					p.interp.noteErrorLine(words)
				}
				return scriptOutcome{res, p.pos}
			}
			last = res
		}
		if terminated {
			return scriptOutcome{last, p.pos}
		}
	}
}

// noteErrorLine appends a while-executing trace line to ErrorInfo.
func (i *Interp) noteErrorLine(words []string) {
	cmd := strings.Join(words, " ")
	if len(cmd) > 60 {
		cmd = cmd[:57] + "..."
	}
	i.ErrorInfo += fmt.Sprintf("\n    while executing\n%q", cmd)
}

func (p *parser) done() bool { return p.pos >= len(p.src) }

// skipCommandSeparators consumes whitespace, newlines, and semicolons
// between commands, plus backslash-newline continuations.
func (p *parser) skipCommandSeparators() {
	for !p.done() {
		switch c := p.src[p.pos]; c {
		case ' ', '\t', '\r', '\n', ';':
			p.pos++
		case '\\':
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				p.pos += 2
			} else {
				return
			}
		default:
			return
		}
	}
}

// skipInterWordSpace consumes spaces/tabs (and backslash-newline) between
// words of a single command. It reports whether the command continues.
func (p *parser) skipInterWordSpace() bool {
	for !p.done() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r':
			p.pos++
		case '\\':
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				p.pos += 2
				continue
			}
			return true
		case '\n', ';':
			return false
		default:
			return true
		}
	}
	return false
}

// skipComment consumes a comment through its terminating newline. A
// backslash-newline inside a comment continues the comment, per Tcl.
func (p *parser) skipComment() {
	for !p.done() {
		c := p.src[p.pos]
		if c == '\\' && p.pos+1 < len(p.src) {
			p.pos += 2
			continue
		}
		p.pos++
		if c == '\n' {
			return
		}
	}
}

// parseCommand gathers the fully substituted words of one command. It stops
// at a newline or semicolon (consumed) or, in bracketed mode, before ']'.
// terminated reports that a bracket terminator was reached.
func (p *parser) parseCommand(bracketed bool) (words []string, out scriptOutcome, terminated bool) {
	for {
		if p.done() {
			return words, scriptOutcome{Ok(""), p.pos}, false
		}
		switch c := p.src[p.pos]; {
		case c == '\n' || c == ';':
			p.pos++
			return words, scriptOutcome{Ok(""), p.pos}, false
		case bracketed && c == ']':
			return words, scriptOutcome{Ok(""), p.pos}, true
		}
		word, res := p.parseWord(bracketed)
		if res.Code != OK {
			return nil, scriptOutcome{res, p.pos}, false
		}
		words = append(words, word)
		if !p.skipInterWordSpace() {
			// Hit newline/; or end: let the loop consume it.
			if p.done() {
				return words, scriptOutcome{Ok(""), p.pos}, false
			}
			continue
		}
	}
}

// parseWord parses a single word starting at p.pos.
func (p *parser) parseWord(bracketed bool) (string, Result) {
	switch p.src[p.pos] {
	case '{':
		return p.parseBracedWord()
	case '"':
		return p.parseQuotedWord(bracketed)
	default:
		return p.parseBareWord(bracketed)
	}
}

// parseBracedWord handles {...}: no substitution except backslash-newline,
// with nested braces tracked; a backslash quotes the following character for
// the purposes of brace counting.
func (p *parser) parseBracedWord() (string, Result) {
	start := p.pos + 1
	depth := 1
	i := start
	var sb strings.Builder
	flushFrom := start
	for i < len(p.src) {
		switch p.src[i] {
		case '\\':
			if i+1 < len(p.src) {
				if p.src[i+1] == '\n' {
					// Backslash-newline inside braces becomes a space.
					sb.WriteString(p.src[flushFrom:i])
					sb.WriteByte(' ')
					i += 2
					for i < len(p.src) && (p.src[i] == ' ' || p.src[i] == '\t') {
						i++
					}
					flushFrom = i
					continue
				}
				i += 2
				continue
			}
			i++
		case '{':
			depth++
			i++
		case '}':
			depth--
			if depth == 0 {
				sb.WriteString(p.src[flushFrom:i])
				p.pos = i + 1
				if !p.atWordEnd() {
					return "", Errf("extra characters after close-brace")
				}
				return sb.String(), Ok("")
			}
			i++
		default:
			i++
		}
	}
	return "", Errf("missing close-brace")
}

// parseQuotedWord handles "...": full substitution, grouping.
func (p *parser) parseQuotedWord(bracketed bool) (string, Result) {
	p.pos++ // consume opening quote
	var sb strings.Builder
	for !p.done() {
		c := p.src[p.pos]
		if c == '"' {
			p.pos++
			if !p.atWordEnd() && !(bracketed && !p.done() && p.src[p.pos] == ']') {
				return "", Errf("extra characters after close-quote")
			}
			return sb.String(), Ok("")
		}
		if res := p.substOne(&sb, substAll); res.Code != OK {
			return "", res
		}
	}
	return "", Errf("missing close-quote")
}

// parseBareWord handles an unquoted word with substitution. It ends at
// whitespace, newline, semicolon, or (bracketed) ']'.
func (p *parser) parseBareWord(bracketed bool) (string, Result) {
	var sb strings.Builder
	for !p.done() {
		c := p.src[p.pos]
		switch c {
		case ' ', '\t', '\r', '\n', ';':
			return sb.String(), Ok("")
		case ']':
			if bracketed {
				return sb.String(), Ok("")
			}
		case '\\':
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				return sb.String(), Ok("")
			}
		}
		if res := p.substOne(&sb, substAll); res.Code != OK {
			return "", res
		}
	}
	return sb.String(), Ok("")
}

// atWordEnd reports whether the parser sits at a valid word boundary.
func (p *parser) atWordEnd() bool {
	if p.done() {
		return true
	}
	switch p.src[p.pos] {
	case ' ', '\t', '\r', '\n', ';', ']':
		return true
	case '\\':
		return p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n'
	}
	return false
}

// substInto performs substitution over src[p.pos:limit] into sb.
func (p *parser) substInto(sb *strings.Builder, limit int, mode substMode) Result {
	for p.pos < limit {
		if res := p.substOne(sb, mode); res.Code != OK {
			return res
		}
	}
	return Ok("")
}

// substOne consumes one substitution unit (a literal byte, a backslash
// escape, a $variable, or a [command]) and appends its expansion.
func (p *parser) substOne(sb *strings.Builder, mode substMode) Result {
	c := p.src[p.pos]
	switch {
	case c == '\\' && mode&substBackslash != 0:
		rep, n := backslashSubst(p.src[p.pos:])
		sb.WriteString(rep)
		p.pos += n
	case c == '$' && mode&substDollar != 0:
		val, n, res := p.varSubst()
		if res.Code != OK {
			return res
		}
		sb.WriteString(val)
		p.pos += n
	case c == '[' && mode&substBracket != 0:
		p.pos++
		out := p.interp.evalScript(p.src[p.pos:], true)
		if out.Code != OK && out.Code != Return {
			return out.Result
		}
		p.pos += out.end
		if p.done() || p.src[p.pos] != ']' {
			return Errf("missing close-bracket")
		}
		p.pos++
		sb.WriteString(out.Value)
	default:
		sb.WriteByte(c)
		p.pos++
	}
	return Ok("")
}

// varSubst parses a $-substitution beginning at p.pos (which holds '$').
// It returns the value and the number of source bytes consumed, leaving
// p.pos untouched.
func (p *parser) varSubst() (string, int, Result) {
	src := p.src[p.pos:]
	if len(src) < 2 {
		return "$", 1, Ok("")
	}
	if src[1] == '{' {
		end := strings.IndexByte(src[2:], '}')
		if end < 0 {
			return "", 0, Errf(`missing close-brace for variable name`)
		}
		name := src[2 : 2+end]
		val, ok := p.interp.GetVar(name)
		if !ok {
			return "", 0, Errf("can't read %q: no such variable", name)
		}
		return val, 2 + end + 1, Ok("")
	}
	j := 1
	for j < len(src) && isVarNameChar(src[j]) {
		j++
	}
	if j == 1 {
		// Bare dollar sign.
		return "$", 1, Ok("")
	}
	name := src[1:j]
	if j < len(src) && src[j] == '(' {
		// Array element: the index itself undergoes substitution.
		sub := &parser{interp: p.interp, src: p.src, pos: p.pos + j + 1}
		var idx strings.Builder
		for !sub.done() && sub.src[sub.pos] != ')' {
			if res := sub.substOne(&idx, substAll); res.Code != OK {
				return "", 0, res
			}
		}
		if sub.done() {
			return "", 0, Errf(`missing ")" in array reference`)
		}
		sub.pos++ // consume ')'
		full := name + "(" + idx.String() + ")"
		val, ok := p.interp.GetVar(full)
		if !ok {
			return "", 0, Errf("can't read %q: no such element in array", full)
		}
		return val, sub.pos - p.pos, Ok("")
	}
	val, ok := p.interp.GetVar(name)
	if !ok {
		return "", 0, Errf("can't read %q: no such variable", name)
	}
	return val, j, Ok("")
}

func isVarNameChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// backslashSubst decodes one backslash escape at the start of s, returning
// the replacement text and the number of bytes consumed. s[0] must be '\\'.
func backslashSubst(s string) (string, int) {
	if len(s) < 2 {
		return "\\", 1
	}
	switch s[1] {
	case 'a':
		return "\a", 2
	case 'b':
		return "\b", 2
	case 'f':
		return "\f", 2
	case 'n':
		return "\n", 2
	case 'r':
		return "\r", 2
	case 't':
		return "\t", 2
	case 'v':
		return "\v", 2
	case 'e':
		return "\x1b", 2
	case '\n':
		// Backslash-newline plus following whitespace collapses to a space.
		n := 2
		for n < len(s) && (s[n] == ' ' || s[n] == '\t') {
			n++
		}
		return " ", n
	case 'x':
		val, digits := 0, 0
		for digits < 2 && 2+digits < len(s) && isHexDigit(s[2+digits]) {
			val = val*16 + hexVal(s[2+digits])
			digits++
		}
		if digits == 0 {
			return "x", 2
		}
		return string(rune(val)), 2 + digits
	case '0', '1', '2', '3', '4', '5', '6', '7':
		val, digits := 0, 0
		for digits < 3 && 1+digits < len(s) && s[1+digits] >= '0' && s[1+digits] <= '7' {
			val = val*8 + int(s[1+digits]-'0')
			digits++
		}
		return string(rune(val)), 1 + digits
	default:
		return s[1:2], 2
	}
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
