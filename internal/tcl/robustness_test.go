package tcl

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// quietInterp builds an interpreter that cannot write to the test output
// or execute external programs — for feeding it garbage.
func quietInterp() *Interp {
	i := New()
	i.Stdout = io.Discard
	i.Stderr = io.Discard
	i.Unregister("exec")
	i.Unregister("source")
	i.Unregister("exit")
	i.Unregister("cd")
	i.Unregister("gets")
	i.Unregister("system")
	return i
}

// Property: evaluating arbitrary byte soup never panics; it either
// succeeds or returns an error.
func TestEvalArbitraryBytesNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		i := quietInterp()
		i.MaxDepth = 50
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", data, r)
				t.Fail()
			}
		}()
		i.Eval(string(data))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// Property: scripts built from Tcl-ish tokens never panic either — this
// drives deeper into the evaluator than raw bytes do.
func TestEvalRandomTokenScriptsNeverPanic(t *testing.T) {
	tokens := []string{
		"set", "a", "$a", "${a}", "[", "]", "{", "}", `"`, ";", "\n",
		"expr", "1", "+", "if", "while", "proc", "foreach", "break",
		"\\", "\\n", "$", "#", " ", "list", "lindex", "string", "match",
		"uplevel", "upvar", "catch", "error", "return", "incr",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		n := r.Intn(25)
		for k := 0; k < n; k++ {
			sb.WriteString(tokens[r.Intn(len(tokens))])
			if r.Intn(3) == 0 {
				sb.WriteByte(' ')
			}
		}
		i := quietInterp()
		i.MaxDepth = 50
		defer func() {
			if rec := recover(); rec != nil {
				t.Logf("panic on script %q: %v", sb.String(), rec)
				t.Fail()
			}
		}()
		i.Eval(sb.String())
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// Property: any string survives a round trip through a variable — set
// then read back yields the identical bytes (values are never reparsed).
func TestVariableRoundTripQuick(t *testing.T) {
	i := New()
	f := func(value string) bool {
		i.SetVar("v", value)
		got, ok := i.GetVar("v")
		return ok && got == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: QuoteElement output always parses back as exactly one element.
func TestQuoteElementSingleQuick(t *testing.T) {
	f := func(s string) bool {
		q := QuoteElement(s)
		items, err := ParseList(q)
		return err == nil && len(items) == 1 && items[0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// Property: backslashSubst consumes at least one byte and never overruns.
func TestBackslashSubstBoundsQuick(t *testing.T) {
	f := func(s string) bool {
		in := "\\" + s
		_, n := backslashSubst(in)
		return n >= 1 && n <= len(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// Property: expr on random small integer expressions never panics and,
// when it succeeds, is deterministic.
func TestExprDeterministicQuick(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "<", ">", "==", "&&", "||"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString(itoa(int64(r.Intn(100))))
		for k := 0; k < r.Intn(6); k++ {
			sb.WriteString(" " + ops[r.Intn(len(ops))] + " ")
			sb.WriteString(itoa(int64(r.Intn(100))))
		}
		i := New()
		a, resA := i.ExprString(sb.String())
		b, resB := i.ExprString(sb.String())
		if resA.Code != resB.Code {
			return false
		}
		return resA.Code != OK || a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Deeply nested braces and brackets stay linear-ish and correct.
func TestDeepBraceNesting(t *testing.T) {
	depth := 200
	script := "set x " + strings.Repeat("{", depth) + "v" + strings.Repeat("}", depth)
	i := New()
	got := evalOK(t, i, script)
	want := strings.Repeat("{", depth-1) + "v" + strings.Repeat("}", depth-1)
	if got != want {
		t.Errorf("deep braces: got %d bytes, want %d", len(got), len(want))
	}
}

func TestHugeWordNoQuadraticBlowup(t *testing.T) {
	// A 1 MB braced word must evaluate promptly (sanity, not a benchmark).
	big := strings.Repeat("a", 1<<20)
	i := New()
	got := evalOK(t, i, "set x {"+big+"}")
	if len(got) != len(big) {
		t.Errorf("len = %d", len(got))
	}
}
