package tcl

import (
	"strings"
	"testing"
)

func TestStepLimitStopsFlatInfiniteLoop(t *testing.T) {
	// MaxDepth cannot catch `while 1 {}` — it never recurses. StepLimit must.
	for _, cache := range []int{DefaultEvalCacheSize, 0} {
		in := New()
		in.SetEvalCacheSize(cache)
		in.StepLimit = 10_000
		_, err := in.Eval("while 1 {}")
		if err == nil {
			t.Fatalf("cache=%d: infinite loop terminated without error", cache)
		}
		if !strings.Contains(err.Error(), "step limit") {
			t.Fatalf("cache=%d: err = %v, want step-limit error", cache, err)
		}
	}
}

func TestStepLimitNotSwallowedByCatch(t *testing.T) {
	in := New()
	in.StepLimit = 10_000
	// Once exhausted, even catch is refused at dispatch, so the loop
	// cannot launder the limit error into another iteration.
	if _, err := in.Eval("while 1 {catch {set x 1}}"); err == nil {
		t.Fatal("catch swallowed the step limit")
	}
}

func TestStepLimitCountsEquallyAcrossEvalCacheVariants(t *testing.T) {
	const script = `
proc fib {n} {
    if {$n < 2} { return $n }
    return [expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]}]
}
set acc 0
for {set i 0} {$i < 8} {incr i} {
    set acc [expr {$acc + [fib $i]}]
}
set acc
`
	run := func(cache int) int64 {
		in := New()
		in.SetEvalCacheSize(cache)
		out, err := in.Eval(script)
		if err != nil {
			t.Fatalf("cache=%d: %v", cache, err)
		}
		if out != "33" {
			t.Fatalf("cache=%d: result %q, want 33", cache, out)
		}
		return in.Steps()
	}
	cached, classic := run(DefaultEvalCacheSize), run(0)
	if cached != classic {
		t.Fatalf("step counts diverge: cached=%d classic=%d (StepLimit would be variant-dependent)", cached, classic)
	}
	if cached == 0 {
		t.Fatal("no steps charged")
	}
}

func TestStepsResetAndUnlimitedByDefault(t *testing.T) {
	in := New()
	if in.StepLimit != 0 {
		t.Fatalf("StepLimit default = %d, want 0 (unlimited)", in.StepLimit)
	}
	if _, err := in.Eval("for {set i 0} {$i < 100} {incr i} {}"); err != nil {
		t.Fatal(err)
	}
	if in.Steps() == 0 {
		t.Fatal("steps not counted")
	}
	in.ResetSteps()
	if in.Steps() != 0 {
		t.Fatal("ResetSteps did not zero the counter")
	}
}
