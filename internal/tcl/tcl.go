// Package tcl implements an interpreter for the Tool Command Language in the
// dialect the 1990 expect paper embeds: the classic string-based Tcl core
// (Ousterhout, USENIX Winter 1990) with control flow, procedures, expression
// evaluation, string and list manipulation, and execution of external
// programs. Everything is a string; commands are the unit of execution.
//
// The interpreter is deliberately close in spirit to Tcl 2.x/6.x: scripts are
// parsed as they are evaluated, substitution follows the classic brace /
// quote / bracket / dollar rules, and non-local control flow (return, break,
// continue, error) propagates as completion codes. The 1990-era command
// aliases used by the paper's scripts (index, length, range, print, case) are
// registered alongside the canonical modern names.
package tcl

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/lru"
	"repro/internal/tcl/vm"
)

// Code is a Tcl completion code. Every command evaluation completes with one
// of these; they are what make constructs such as the paper's
//
//	expect {*welcome*} break {*failed*} abort
//
// able to terminate an enclosing loop from inside an action argument.
type Code int

// Completion codes, numerically identical to real Tcl's TCL_OK..TCL_CONTINUE.
const (
	OK Code = iota
	Error
	Return
	Break
	Continue
)

func (c Code) String() string {
	switch c {
	case OK:
		return "ok"
	case Error:
		return "error"
	case Return:
		return "return"
	case Break:
		return "break"
	case Continue:
		return "continue"
	default:
		return fmt.Sprintf("code-%d", int(c))
	}
}

// Result is the outcome of evaluating a script or command: a completion code
// plus the result string (the value on OK/Return, the message on Error).
type Result struct {
	Code  Code
	Value string
}

// Ok returns a successful Result carrying value.
func Ok(value string) Result { return Result{OK, value} }

// Errf formats an error Result.
func Errf(format string, args ...any) Result {
	return Result{Error, fmt.Sprintf(format, args...)}
}

// Command is the implementation of a Tcl command. args[0] is the command
// name as invoked (so aliases can tailor messages); the remaining elements
// are the fully substituted words.
type Command func(i *Interp, args []string) Result

// variable is a scalar or array variable slot. A slot holds either a scalar
// value, an array, or a link to a variable in another frame (upvar/global).
type variable struct {
	value string
	arr   map[string]string
	isArr bool
	link  *variable // non-nil for upvar/global aliases

	// num memoizes the vm's numeric classification of value; numState is 0
	// when unknown and 1 when num == vm.ClassifyOperand(value). Every write
	// to value must reset numState (or re-establish the invariant).
	num      vm.Value
	numState uint8
}

func (v *variable) target() *variable {
	for v.link != nil {
		v = v.link
	}
	return v
}

// frame is one level of the procedure call stack. Frame 0 holds globals.
type frame struct {
	vars     map[string]*variable
	procName string
}

// Proc is a user-defined procedure.
type Proc struct {
	Args []ProcArg
	Body string
}

// ProcArg is one formal parameter, optionally carrying a default.
type ProcArg struct {
	Name       string
	Default    string
	HasDefault bool
}

// Interp is a Tcl interpreter: a command table, a variable frame stack, and
// the evaluation machinery. It is not safe for concurrent use; expect drives
// a single interpreter from a single goroutine, exactly as the original did.
type Interp struct {
	commands map[string]Command
	procs    map[string]*Proc
	frames   []*frame

	// Stdout and Stderr receive the output of puts/print and error traces.
	// They default to the process's own streams but are swappable so tests
	// and the expect engine's logging layer can capture them.
	Stdout io.Writer
	Stderr io.Writer

	// ErrorInfo accumulates a human-readable evaluation trace after an
	// error, in the manner of Tcl's errorInfo.
	ErrorInfo string

	// Trace, when non-nil, is called with every command about to be
	// executed (after substitution). It implements the paper's §3.3
	// "tracing - Programs may be traced to assist debugging".
	Trace func(depth int, words []string)

	// DispatchHook, when non-nil, observes every completed command
	// dispatch: name, call depth, and wall time spent (command body or
	// procedure call, including everything beneath it). Where Trace shows
	// what is about to run, DispatchHook reports what it cost — the
	// expect engine feeds its eval-dispatch latency histogram and flight
	// recorder through it. Setting it adds two clock reads per dispatch;
	// leave nil for the zero-overhead path.
	DispatchHook func(name string, depth int, d time.Duration)

	// MaxDepth bounds recursion to turn runaway scripts into errors
	// instead of stack exhaustion.
	MaxDepth int

	// StepLimit, when > 0, bounds the total number of evaluation steps
	// (command dispatches plus script evaluations) before Eval gives up
	// with an error. MaxDepth only catches runaway *recursion*; StepLimit
	// also catches flat infinite loops (`while 1 {}`), which makes it the
	// safety net for fuzzing and other adversarial-input drivers. Steps
	// are counted in EvalWords and EvalScript only — both the cached and
	// the classic parse paths dispatch exclusively through those two
	// entry points, so a given script costs the same number of steps
	// regardless of SetEvalCacheSize. Zero means no limit.
	StepLimit int64

	depth       int
	steps       int64
	exitHandler func(code int)

	// evalCache memoizes compiled script skeletons keyed by script text, so
	// proc bodies, loop bodies, and if arms parse once instead of per
	// evaluation. exprCache does the same for expr ASTs. Keying by source
	// text makes invalidation automatic: redefining a proc or renaming a
	// command changes which body text is evaluated (dispatch stays by-name
	// at eval time), never which compilation a text maps to. A nil cache
	// selects the classic parse-as-you-evaluate path.
	evalCache *lru.Cache[string, *compiledScript]
	exprCache *lru.Cache[string, *exprAST]

	// evalMode selects the engine behind EvalScript and expr: the cached
	// tree walker (default), the classic re-parsing evaluator, or the
	// bytecode vm. The vm caches hold lowered programs plus their
	// inline-cache arrays; cacheSize remembers the configured bound.
	evalMode    EvalMode
	vmCache     *lru.Cache[string, *vmEntry]
	vmExprCache *lru.Cache[string, *vmExprEntry]
	cacheSize   int

	// One-entry front caches ahead of the vm LRUs: the steady state
	// re-evaluates the same text (loop bodies, proc bodies), where a
	// pointer-equal string hit skips the lock + map + recency update.
	vmFront        *vmEntry
	vmFrontKey     string
	vmExprFront    *vmExprEntry
	vmExprFrontKey string

	// vmRegs is the vm's shared register stack; each program execution
	// opens a window on top and pops it on return.
	vmRegs []vm.Value

	// cmdEpoch and varEpoch version the vm's inline caches. cmdEpoch
	// advances whenever the command/procedure tables change shape
	// (register, unregister, proc, rename); varEpoch whenever a variable
	// binding is destroyed or re-linked (unset, upvar/global, restore).
	// Both start at 1 so zero-valued cache entries are always stale.
	cmdEpoch uint64
	varEpoch uint64
}

// DefaultEvalCacheSize bounds the script and expr compile caches. A few
// hundred entries covers every distinct proc body, loop body, and expression
// in scripts far larger than the paper's examples while keeping worst-case
// retained memory small.
const DefaultEvalCacheSize = 512

// New creates an interpreter with the full built-in command set registered.
func New() *Interp {
	i := &Interp{
		commands: make(map[string]Command),
		procs:    make(map[string]*Proc),
		frames:   []*frame{{vars: make(map[string]*variable)}},
		Stdout:   os.Stdout,
		Stderr:   os.Stderr,
		MaxDepth: 1000,
		cmdEpoch: 1,
		varEpoch: 1,
	}
	i.SetEvalCacheSize(DefaultEvalCacheSize)
	registerCoreCommands(i)
	registerStringCommands(i)
	registerListCommands(i)
	registerIOCommands(i)
	registerCompatCommands(i)
	return i
}

// Register installs (or replaces) a command implementation.
func (i *Interp) Register(name string, cmd Command) {
	i.commands[name] = cmd
	i.cmdEpoch++
}

// Unregister removes a command; it reports whether the command existed.
func (i *Interp) Unregister(name string) bool {
	_, ok := i.commands[name]
	delete(i.commands, name)
	i.cmdEpoch++
	return ok
}

// CommandNames returns the sorted names of all registered commands,
// including procedures.
func (i *Interp) CommandNames() []string {
	names := make([]string, 0, len(i.commands)+len(i.procs))
	for n := range i.commands {
		names = append(names, n)
	}
	for n := range i.procs {
		if _, dup := i.commands[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// ProcNames returns the sorted names of defined procedures.
func (i *Interp) ProcNames() []string {
	names := make([]string, 0, len(i.procs))
	for n := range i.procs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupProc returns the definition of a procedure, if any.
func (i *Interp) LookupProc(name string) (*Proc, bool) {
	p, ok := i.procs[name]
	return p, ok
}

// OnExit installs the handler invoked by the exit command. The expect CLI
// uses this to tear down spawned processes before the process exits; when no
// handler is set, exit calls os.Exit directly.
func (i *Interp) OnExit(fn func(code int)) { i.exitHandler = fn }

// current returns the active (innermost) frame.
func (i *Interp) current() *frame { return i.frames[len(i.frames)-1] }

// Level returns the current procedure call depth (0 = global).
func (i *Interp) Level() int { return len(i.frames) - 1 }

// lookupVar finds name's slot in the current frame, resolving links.
func (i *Interp) lookupVar(name string) (*variable, bool) {
	v, ok := i.current().vars[name]
	if !ok {
		return nil, false
	}
	return v.target(), true
}

// SetVar sets scalar variable name in the current frame and returns value.
func (i *Interp) SetVar(name, value string) string {
	base, elem, isElem := splitArrayRef(name)
	f := i.current()
	v, ok := f.vars[base]
	if !ok {
		v = &variable{}
		f.vars[base] = v
	}
	v = v.target()
	if isElem {
		if !v.isArr {
			v.isArr = true
			v.arr = make(map[string]string)
		}
		v.arr[elem] = value
		return value
	}
	v.isArr = false
	v.value = value
	v.numState = 0
	return value
}

// GetVar fetches scalar (or array element) name from the current frame.
func (i *Interp) GetVar(name string) (string, bool) {
	base, elem, isElem := splitArrayRef(name)
	v, ok := i.lookupVar(base)
	if !ok {
		return "", false
	}
	if isElem {
		if !v.isArr {
			return "", false
		}
		val, ok := v.arr[elem]
		return val, ok
	}
	if v.isArr {
		return "", false
	}
	return v.value, true
}

// UnsetVar removes a variable (or array element) from the current frame.
func (i *Interp) UnsetVar(name string) bool {
	base, elem, isElem := splitArrayRef(name)
	f := i.current()
	v, ok := f.vars[base]
	if !ok {
		return false
	}
	if isElem {
		t := v.target()
		if !t.isArr {
			return false
		}
		_, ok := t.arr[elem]
		delete(t.arr, elem)
		return ok
	}
	delete(f.vars, base)
	i.varEpoch++
	return true
}

// GlobalSet sets a variable in the global frame regardless of current level.
func (i *Interp) GlobalSet(name, value string) {
	saved := i.frames
	i.frames = i.frames[:1]
	i.SetVar(name, value)
	i.frames = saved
}

// GlobalGet reads a variable from the global frame.
func (i *Interp) GlobalGet(name string) (string, bool) {
	saved := i.frames
	i.frames = i.frames[:1]
	v, ok := i.GetVar(name)
	i.frames = saved
	return v, ok
}

// VarSnapshot is the serializable value of one variable: a scalar or a
// whole array. It is the unit of the interpreter state a session
// checkpoint carries across a process boundary.
type VarSnapshot struct {
	Value string            `json:"value,omitempty"`
	Arr   map[string]string `json:"arr,omitempty"`
	IsArr bool              `json:"is_arr,omitempty"`
}

// SnapshotGlobals captures every global variable (following upvar links
// to their targets) as deep copies safe to serialize or hold across
// further evaluation.
func (i *Interp) SnapshotGlobals() map[string]VarSnapshot {
	g := i.frames[0]
	out := make(map[string]VarSnapshot, len(g.vars))
	for name, v := range g.vars {
		t := v.target()
		if t.isArr {
			arr := make(map[string]string, len(t.arr))
			for k, val := range t.arr {
				arr[k] = val
			}
			out[name] = VarSnapshot{Arr: arr, IsArr: true}
		} else {
			out[name] = VarSnapshot{Value: t.value}
		}
	}
	return out
}

// RestoreGlobals installs a snapshot into the global frame, overwriting
// the variables it names and leaving all others untouched.
func (i *Interp) RestoreGlobals(snap map[string]VarSnapshot) {
	g := i.frames[0]
	for name, vs := range snap {
		v := &variable{}
		if vs.IsArr {
			v.isArr = true
			v.arr = make(map[string]string, len(vs.Arr))
			for k, val := range vs.Arr {
				v.arr[k] = val
			}
		} else {
			v.value = vs.Value
		}
		g.vars[name] = v
	}
	i.varEpoch++
}

// linkVar makes local name in the current frame an alias for target's slot.
func (i *Interp) linkVar(name string, target *variable) {
	i.current().vars[name] = &variable{link: target}
	i.varEpoch++
}

// splitArrayRef splits "a(b)" into ("a","b",true); plain names pass through.
func splitArrayRef(name string) (base, elem string, isElem bool) {
	if n := len(name); n > 2 && name[n-1] == ')' {
		if open := strings.IndexByte(name, '('); open > 0 {
			return name[:open], name[open+1 : n-1], true
		}
	}
	return name, "", false
}

// TclError is the Go error surfaced by Eval when a script fails.
type TclError struct {
	Message   string
	ErrorInfo string
}

func (e *TclError) Error() string { return e.Message }

// Eval evaluates a complete script and returns its final result string. A
// script-level error (code Error) becomes a *TclError; break/continue/return
// escaping the script are reported as errors, matching Tcl's top level.
func (i *Interp) Eval(script string) (string, error) {
	res := i.EvalScript(script)
	switch res.Code {
	case OK, Return:
		return res.Value, nil
	case Error:
		// Scripts can inspect the trace through the classic variable.
		i.GlobalSet("errorInfo", res.Value+i.ErrorInfo)
		return "", &TclError{Message: res.Value, ErrorInfo: i.ErrorInfo}
	case Break:
		return "", &TclError{Message: `invoked "break" outside of a loop`}
	case Continue:
		return "", &TclError{Message: `invoked "continue" outside of a loop`}
	default:
		return "", &TclError{Message: fmt.Sprintf("command returned bad code: %d", res.Code)}
	}
}

// SetEvalCacheSize rebounds the script and expr compile caches to n entries,
// dropping any cached compilations. n <= 0 disables caching entirely,
// restoring the classic parse-as-you-evaluate path (useful as an
// equivalence/benchmark baseline).
func (i *Interp) SetEvalCacheSize(n int) {
	i.cacheSize = n
	i.vmFront, i.vmFrontKey = nil, ""
	i.vmExprFront, i.vmExprFrontKey = nil, ""
	if n <= 0 {
		i.evalCache = nil
		i.exprCache = nil
		i.vmCache = nil
		i.vmExprCache = nil
		return
	}
	i.evalCache = lru.New[string, *compiledScript](n)
	i.exprCache = lru.New[string, *exprAST](n)
	if i.vmCache != nil || i.evalMode == EvalVM {
		i.vmCache = lru.New[string, *vmEntry](n)
		i.vmExprCache = lru.New[string, *vmExprEntry](n)
	}
}

// EvalCacheStats reports cumulative hit/miss/eviction counts for the script
// compile cache (zeros when caching is disabled).
func (i *Interp) EvalCacheStats() (hits, misses, evicted uint64) {
	if i.evalCache == nil {
		return 0, 0, 0
	}
	return i.evalCache.Stats()
}

// EvalScript evaluates a script and returns the raw completion Result,
// allowing callers (loops, the expect command's actions) to observe
// break/continue/return codes.
func (i *Interp) EvalScript(script string) Result {
	if i.depth >= i.MaxDepth {
		return Errf("too many nested evaluations (infinite loop?)")
	}
	if res, ok := i.spendStep(); !ok {
		return res
	}
	i.depth++
	defer func() { i.depth-- }()
	if i.evalMode == EvalClassic || i.evalCache == nil {
		return i.evalScript(script, false).Result
	}
	if i.evalMode == EvalVM && i.vmCache != nil {
		return i.vmEvalScript(script)
	}
	cs, ok := i.evalCache.Get(script)
	if !ok {
		cs = compileScript(script, false)
		i.evalCache.Put(script, cs)
	}
	res, _ := i.runCompiled(cs)
	return res
}

// spendStep charges one evaluation step against StepLimit. It returns
// ok=false with the error Result once the budget is exhausted; because the
// charge happens at the dispatch point, not inside command bodies, an
// exhausted interpreter refuses even `catch` — scripts cannot swallow the
// limit and keep running.
func (i *Interp) spendStep() (Result, bool) {
	i.steps++
	if i.StepLimit > 0 && i.steps > i.StepLimit {
		return Errf("evaluation step limit exceeded (%d steps)", i.StepLimit), false
	}
	return Result{}, true
}

// Steps reports how many evaluation steps have been charged so far.
func (i *Interp) Steps() int64 { return i.steps }

// ResetSteps zeroes the step counter, restarting the StepLimit budget.
func (i *Interp) ResetSteps() { i.steps = 0 }

// EvalWords dispatches an already-substituted command.
func (i *Interp) EvalWords(words []string) Result {
	if len(words) == 0 {
		return Ok("")
	}
	if res, ok := i.spendStep(); !ok {
		return res
	}
	if i.Trace != nil {
		i.Trace(i.Level(), words)
	}
	name := words[0]
	if i.DispatchHook != nil {
		start := time.Now()
		res := i.dispatch(name, words)
		i.DispatchHook(name, i.Level(), time.Since(start))
		return res
	}
	return i.dispatch(name, words)
}

// dispatch resolves name against commands then procs and runs it.
func (i *Interp) dispatch(name string, words []string) Result {
	if cmd, ok := i.commands[name]; ok {
		return cmd(i, words)
	}
	if p, ok := i.procs[name]; ok {
		return i.callProc(name, p, words[1:])
	}
	return Errf("invalid command name %q", name)
}

// callProc pushes a frame, binds formals, and runs the body.
func (i *Interp) callProc(name string, p *Proc, args []string) Result {
	f := &frame{vars: make(map[string]*variable), procName: name}
	nf := len(p.Args)
	for ai, formal := range p.Args {
		if formal.Name == "args" && ai == nf-1 {
			f.vars["args"] = &variable{value: FormList(args[ai:])}
			args = args[:ai] // consumed
			break
		}
		var val string
		switch {
		case ai < len(args):
			val = args[ai]
		case formal.HasDefault:
			val = formal.Default
		default:
			return Errf("no value given for parameter %q to %q", formal.Name, name)
		}
		f.vars[formal.Name] = &variable{value: val}
	}
	if nf == 0 && len(args) > 0 {
		return Errf("called %q with too many arguments", name)
	}
	if nf > 0 && p.Args[nf-1].Name != "args" && len(args) > nf {
		return Errf("called %q with too many arguments", name)
	}
	i.frames = append(i.frames, f)
	defer func() { i.frames = i.frames[:len(i.frames)-1] }()

	res := i.EvalScript(p.Body)
	switch res.Code {
	case Return, OK:
		return Ok(res.Value)
	case Break:
		return Errf(`invoked "break" outside of a loop`)
	case Continue:
		return Errf(`invoked "continue" outside of a loop`)
	default:
		i.ErrorInfo += fmt.Sprintf("\n    (procedure %q line 1)", name)
		return res
	}
}

// Subst performs $, [], and backslash substitution on text, as if it were
// the body of a double-quoted word.
func (i *Interp) Subst(text string) (string, error) {
	var sb strings.Builder
	p := &parser{interp: i, src: text}
	if res := p.substInto(&sb, len(text), substAll); res.Code != OK {
		return "", &TclError{Message: res.Value}
	}
	return sb.String(), nil
}
