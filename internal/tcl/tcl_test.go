package tcl

import (
	"bytes"
	"strings"
	"testing"
)

// evalOK evaluates script and fails the test on error.
func evalOK(t *testing.T, i *Interp, script string) string {
	t.Helper()
	out, err := i.Eval(script)
	if err != nil {
		t.Fatalf("Eval(%q) failed: %v", script, err)
	}
	return out
}

func TestEvalBasics(t *testing.T) {
	cases := []struct {
		name, script, want string
	}{
		{"set returns value", `set a 5`, "5"},
		{"set then read", `set a 5; set a`, "5"},
		{"dollar substitution", `set a 5; set b $a`, "5"},
		{"braced no substitution", `set a 5; set b {$a}`, "$a"},
		{"quoted substitution", `set a 5; set b "$a!"`, "5!"},
		{"command substitution", `set a [set b 7]`, "7"},
		{"nested brackets", `set a [set b [set c 9]]`, "9"},
		{"semicolon separates", `set a 1; set b 2; set b`, "2"},
		{"newline separates", "set a 1\nset b 2\nset a", "1"},
		{"empty script", ``, ""},
		{"comment ignored", "# hello\nset a 3", "3"},
		{"comment with continuation", "# line one \\\nline two\nset a 4", "4"},
		{"backslash newline joins words", "set a \\\n5", "5"},
		{"escape tab", `set a a\tb`, "a\tb"},
		{"escape newline char", `set a a\nb`, "a\nb"},
		{"escape return", `set a hello\r`, "hello\r"},
		{"escape dollar", `set a \$x`, "$x"},
		{"escape hex", `set a \x41`, "A"},
		{"escape octal", `set a \101`, "A"},
		{"braces nest", `set a {x {y z} w}`, "x {y z} w"},
		{"brace var name", `set abc 10; set d ${abc}`, "10"},
		{"dollar no name is literal", `set a $`, "$"},
		{"append command", `set a foo; append a bar baz`, "foobarbaz"},
		{"incr", `set a 5; incr a`, "6"},
		{"incr by", `set a 5; incr a -2`, "3"},
		{"unset then exists", `set a 5; unset a; info exists a`, "0"},
		{"two words to one command", `concat a  b     c`, "a b c"},
		{"trailing semicolon", `set a 1;`, "1"},
		{"multiple blank lines", "\n\n\nset a ok\n\n", "ok"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := New()
			if got := evalOK(t, i, tc.script); got != tc.want {
				t.Errorf("Eval(%q) = %q, want %q", tc.script, got, tc.want)
			}
		})
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		name, script, wantSub string
	}{
		{"unknown command", `nosuchcmd`, "invalid command name"},
		{"unknown variable", `set b $nope`, "no such variable"},
		{"missing close brace", `set a {foo`, "missing close-brace"},
		{"missing close quote", `set a "foo`, "missing close-quote"},
		{"missing close bracket", `set a [set b 1`, "missing close-bracket"},
		{"extra after brace", `set a {x}y`, "extra characters after close-brace"},
		{"extra after quote", `set a "x"y`, "extra characters after close-quote"},
		{"wrong arity set", `set`, "wrong # args"},
		{"wrong arity incr", `incr`, "wrong # args"},
		{"incr non-integer", `set a foo; incr a`, "expected integer"},
		{"unset missing", `unset nope`, "can't unset"},
		{"break at top level", `break`, "outside of a loop"},
		{"continue at top level", `continue`, "outside of a loop"},
		{"array ref missing paren", `set x $a(`, `missing ")"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := New()
			_, err := i.Eval(tc.script)
			if err == nil {
				t.Fatalf("Eval(%q) succeeded, want error containing %q", tc.script, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("Eval(%q) error = %q, want substring %q", tc.script, err, tc.wantSub)
			}
		})
	}
}

func TestControlFlow(t *testing.T) {
	cases := []struct {
		name, script, want string
	}{
		{"if true", `if {1} {set a yes}`, "yes"},
		{"if false no else", `if {0} {set a yes}`, ""},
		{"if else", `if {0} {set a yes} else {set a no}`, "no"},
		{"if then else keywords", `if {0} then {set a yes} else {set a no}`, "no"},
		{"if elseif", `if {0} {set a 1} elseif {1} {set a 2} else {set a 3}`, "2"},
		{"if bare else old style", `if 0 {set a 1} {set a 2}`, "2"},
		{"paper swap fragment", `set a 1; set b 2
			if {$a < $b} {
				set tmp $a
				set a $b
				set b $tmp
			}
			set a`, "2"},
		{"while countdown", `set n 5; set s 0; while {$n > 0} {set s [expr $s+$n]; incr n -1}; set s`, "15"},
		{"while break", `set n 0; while {1} {incr n; if {$n == 3} break}; set n`, "3"},
		{"while continue", `set n 0; set hits 0
			while {$n < 10} {incr n; if {$n % 2} continue; incr hits}
			set hits`, "5"},
		{"for classic", `set s 0; for {set i 0} {$i < 10} {incr i} {incr s $i}; set s`, "45"},
		{"for paper empty clauses", `set n 0; for {} 1 {} {incr n; if {$n == 4} break}; set n`, "4"},
		{"foreach", `set s {}; foreach x {a b c} {append s $x}; set s`, "abc"},
		{"foreach break", `set s {}; foreach x {a b c d} {if {$x == "c"} break; append s $x}; set s`, "ab"},
		{"switch exact", `switch b a {set r 1} b {set r 2} default {set r 3}`, "2"},
		{"switch default", `switch z a {set r 1} default {set r 3}`, "3"},
		{"switch glob", `switch -glob hello *ell* {set r glob} default {set r no}`, "glob"},
		{"switch fallthrough dash", `switch b a - b {set r ab} default {set r d}`, "ab"},
		{"switch single list form", `switch b {a {set r 1} b {set r 2}}`, "2"},
		{"case command", `case hello in {*ell*} {set r 1} default {set r 2}`, "1"},
		{"case default", `case zzz in {*ell*} {set r 1} default {set r 2}`, "2"},
		{"nested loops break inner", `set s {}
			foreach x {a b} {foreach y {1 2 3} {if {$y == 2} break; append s $x$y}}
			set s`, "a1b1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := New()
			if got := evalOK(t, i, tc.script); got != tc.want {
				t.Errorf("Eval(%q) = %q, want %q", tc.script, got, tc.want)
			}
		})
	}
}

func TestProcedures(t *testing.T) {
	cases := []struct {
		name, script, want string
	}{
		{"simple proc", `proc add {a b} {expr $a+$b}; add 2 3`, "5"},
		{"return value", `proc f {} {return hi; set x never}; f`, "hi"},
		{"implicit return last", `proc f {} {set x 42}; f`, "42"},
		{"paper factorial", `
			proc fac x {
				if {$x == 1} {return 1}
				return [expr {$x * [fac [expr $x-1]]}]
			}
			fac 5`, "120"},
		{"default argument", `proc greet {{who world}} {return hello-$who}; greet`, "hello-world"},
		{"default overridden", `proc greet {{who world}} {return hello-$who}; greet go`, "hello-go"},
		{"args collects rest", `proc f {a args} {return $a:[llength $args]}; f x 1 2 3`, "x:3"},
		{"args empty", `proc f {args} {llength $args}; f`, "0"},
		{"locals are local", `set x global; proc f {} {set x local}; f; set x`, "global"},
		{"global command", `set g 1; proc f {} {global g; incr g}; f; set g`, "2"},
		{"upvar", `proc bump v {upvar $v x; incr x}; set n 7; bump n; set n`, "8"},
		{"recursion depth ok", `proc down x {if {$x == 0} {return done}; down [expr $x-1]}; down 50`, "done"},
		{"uplevel", `proc setcaller {} {uplevel {set z 99}}; proc f {} {setcaller; set z}; f`, "99"},
		{"rename proc", `proc f {} {return old}; rename f g; g`, "old"},
		{"proc redefined", `proc f {} {return 1}; proc f {} {return 2}; f`, "2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := New()
			if got := evalOK(t, i, tc.script); got != tc.want {
				t.Errorf("Eval(%q) = %q, want %q", tc.script, got, tc.want)
			}
		})
	}
}

func TestProcErrors(t *testing.T) {
	cases := []struct {
		name, script, wantSub string
	}{
		{"missing arg", `proc f {a} {}; f`, "no value given"},
		{"too many args", `proc f {a} {}; f 1 2`, "too many arguments"},
		{"infinite recursion trapped", `proc f {} {f}; f`, "too many nested"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := New()
			_, err := i.Eval(tc.script)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("Eval(%q) error = %v, want substring %q", tc.script, err, tc.wantSub)
			}
		})
	}
}

func TestCatchAndError(t *testing.T) {
	i := New()
	if got := evalOK(t, i, `catch {nosuchcmd}`); got != "1" {
		t.Errorf("catch of error = %q, want 1", got)
	}
	if got := evalOK(t, i, `catch {set a 5}`); got != "0" {
		t.Errorf("catch of ok = %q, want 0", got)
	}
	if got := evalOK(t, i, `catch {nosuchcmd} msg; set msg`); !strings.Contains(got, "invalid command name") {
		t.Errorf("catch message = %q", got)
	}
	if got := evalOK(t, i, `catch {break}`); got != "3" {
		t.Errorf("catch of break = %q, want 3", got)
	}
	if got := evalOK(t, i, `catch {error boom} m; set m`); got != "boom" {
		t.Errorf("catch of error cmd = %q, want boom", got)
	}
	_, err := i.Eval(`error "custom failure"`)
	if err == nil || err.Error() != "custom failure" {
		t.Errorf("error command: got %v", err)
	}
}

func TestArrays(t *testing.T) {
	i := New()
	evalOK(t, i, `set a(x) 1; set a(y) 2`)
	if got := evalOK(t, i, `set a(x)`); got != "1" {
		t.Errorf("array read = %q", got)
	}
	if got := evalOK(t, i, `array size a`); got != "2" {
		t.Errorf("array size = %q", got)
	}
	if got := evalOK(t, i, `array names a`); got != "x y" {
		t.Errorf("array names = %q", got)
	}
	if got := evalOK(t, i, `set k y; set a($k)`); got != "2" {
		t.Errorf("computed index = %q", got)
	}
	evalOK(t, i, `array set b {one 1 two 2}`)
	if got := evalOK(t, i, `set b(two)`); got != "2" {
		t.Errorf("array set = %q", got)
	}
	if got := evalOK(t, i, `array exists a`); got != "1" {
		t.Errorf("array exists = %q", got)
	}
	if got := evalOK(t, i, `array exists nope`); got != "0" {
		t.Errorf("array exists missing = %q", got)
	}
	evalOK(t, i, `unset a(x)`)
	if got := evalOK(t, i, `array size a`); got != "1" {
		t.Errorf("after unset element, size = %q", got)
	}
}

func TestPutsAndChannels(t *testing.T) {
	i := New()
	var out, errOut bytes.Buffer
	i.Stdout = &out
	i.Stderr = &errOut
	evalOK(t, i, `puts hello`)
	evalOK(t, i, `puts -nonewline world`)
	evalOK(t, i, `puts stderr oops`)
	if got := out.String(); got != "hello\nworld" {
		t.Errorf("stdout = %q", got)
	}
	if got := errOut.String(); got != "oops\n" {
		t.Errorf("stderr = %q", got)
	}
	// print is the 1990 alias.
	out.Reset()
	evalOK(t, i, `print busy`)
	if got := out.String(); got != "busy\n" {
		t.Errorf("print = %q", got)
	}
}

func TestCompatAliases(t *testing.T) {
	i := New()
	if got := evalOK(t, i, `index {a b c} 1`); got != "b" {
		t.Errorf("index = %q", got)
	}
	if got := evalOK(t, i, `length {a b c}`); got != "3" {
		t.Errorf("length = %q", got)
	}
	if got := evalOK(t, i, `range {a b c d} 1 2`); got != "b c" {
		t.Errorf("range = %q", got)
	}
	// The paper's argv access idiom.
	i.SetVar("argv", FormList([]string{"callback.exp", "12016442332"}))
	if got := evalOK(t, i, `index $argv 1`); got != "12016442332" {
		t.Errorf("index $argv 1 = %q", got)
	}
}

func TestEvalUplevelEval(t *testing.T) {
	i := New()
	if got := evalOK(t, i, `eval set a 5`); got != "5" {
		t.Errorf("eval = %q", got)
	}
	if got := evalOK(t, i, `eval {set b 6}`); got != "6" {
		t.Errorf("eval braced = %q", got)
	}
	if got := evalOK(t, i, `set cmd {set c 7}; eval $cmd`); got != "7" {
		t.Errorf("eval var = %q", got)
	}
}

func TestSubstCommand(t *testing.T) {
	i := New()
	evalOK(t, i, `set name world`)
	if got := evalOK(t, i, `subst {hello $name}`); got != "hello world" {
		t.Errorf("subst = %q", got)
	}
}

func TestInfo(t *testing.T) {
	i := New()
	evalOK(t, i, `proc myproc {a b} {return x}`)
	if got := evalOK(t, i, `info procs my*`); got != "myproc" {
		t.Errorf("info procs = %q", got)
	}
	if got := evalOK(t, i, `info args myproc`); got != "a b" {
		t.Errorf("info args = %q", got)
	}
	if got := evalOK(t, i, `info body myproc`); got != "return x" {
		t.Errorf("info body = %q", got)
	}
	if got := evalOK(t, i, `info level`); got != "0" {
		t.Errorf("info level = %q", got)
	}
	if got := evalOK(t, i, `proc lvl {} {info level}; lvl`); got != "1" {
		t.Errorf("info level in proc = %q", got)
	}
	cmds := evalOK(t, i, `info commands`)
	for _, must := range []string{"set", "expr", "proc", "while"} {
		if !strings.Contains(" "+cmds+" ", " "+must+" ") {
			t.Errorf("info commands missing %q", must)
		}
	}
}

func TestExitHandler(t *testing.T) {
	i := New()
	gotCode := -1
	i.OnExit(func(code int) { gotCode = code })
	_, err := i.Eval(`exit 3`)
	if err == nil {
		t.Fatal("exit should surface as error when handler returns")
	}
	if gotCode != 3 {
		t.Errorf("exit handler code = %d, want 3", gotCode)
	}
}

func TestTraceHook(t *testing.T) {
	i := New()
	var traced []string
	i.Trace = func(depth int, words []string) {
		traced = append(traced, words[0])
	}
	evalOK(t, i, `set a 1; set b 2`)
	if len(traced) != 2 || traced[0] != "set" {
		t.Errorf("trace = %v", traced)
	}
}

func TestDeepNestingSubstitution(t *testing.T) {
	i := New()
	// Build [set x [set x [set x ... 1]]] nested 30 deep.
	script := "1"
	for k := 0; k < 30; k++ {
		script = "[set x " + script + "]"
	}
	if got := evalOK(t, i, "set y "+script); got != "1" {
		t.Errorf("deep nesting = %q", got)
	}
}

func TestQuotedWordsWithSpecials(t *testing.T) {
	i := New()
	if got := evalOK(t, i, `set a "semi;colon"`); got != "semi;colon" {
		t.Errorf("quoted semicolon = %q", got)
	}
	if got := evalOK(t, i, "set a \"line1\nline2\""); got != "line1\nline2" {
		t.Errorf("quoted newline = %q", got)
	}
	if got := evalOK(t, i, `set a {bra[cket]}`); got != "bra[cket]" {
		t.Errorf("braced bracket = %q", got)
	}
}
