package vm

import (
	"fmt"
	"math"
	"strings"
)

// BinOp numbers the binary operators of the expression machine. The
// numeric order groups them by apply family (arith / int-only / compare)
// so the executor and disassembler can switch on ranges.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpBitOr
	OpBitXor
	OpBitAnd
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpBitOr: "|", OpBitXor: "^", OpBitAnd: "&", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpGt: ">", OpLe: "<=", OpGe: ">=",
}

// Name returns the operator's source spelling (used in error messages,
// which must match the classic evaluator's byte for byte).
func (op BinOp) Name() string { return binOpNames[op] }

// BinOpByName maps an operator spelling back to its code (compiler use).
func BinOpByName(name string) (BinOp, bool) {
	for op, n := range binOpNames {
		if n == name {
			return BinOp(op), true
		}
	}
	return 0, false
}

// ApplyBinary evaluates a binary operator over two values, reproducing
// applyArith/applyIntOp/applyCompare exactly, error strings included. The
// second return is the error message, "" on success.
func ApplyBinary(op BinOp, a, b Value) (Value, string) {
	switch {
	case op <= OpMod:
		return applyArith(op, a, b)
	case op <= OpShr:
		return applyIntOp(op, a, b)
	default:
		return applyCompare(op, a, b)
	}
}

func applyArith(op BinOp, a, b Value) (Value, string) {
	an, aok := a.Numeric()
	bn, bok := b.Numeric()
	if !aok || !bok {
		return Value{}, fmt.Sprintf("can't use non-numeric string as operand of %q", op.Name())
	}
	if an.kind == KInt && bn.kind == KInt {
		ax, bx := an.Int(), bn.Int()
		switch op {
		case OpAdd:
			return IntValue(ax + bx), ""
		case OpSub:
			return IntValue(ax - bx), ""
		case OpMul:
			return IntValue(ax * bx), ""
		case OpDiv:
			if bx == 0 {
				return Value{}, "divide by zero"
			}
			// Tcl floors integer division toward negative infinity.
			q := ax / bx
			if (ax%bx != 0) && ((ax < 0) != (bx < 0)) {
				q--
			}
			return IntValue(q), ""
		case OpMod:
			if bx == 0 {
				return Value{}, "divide by zero"
			}
			r := ax % bx
			if r != 0 && ((ax < 0) != (bx < 0)) {
				r += bx
			}
			return IntValue(r), ""
		}
	}
	af, bf := an.asFloat(), bn.asFloat()
	switch op {
	case OpAdd:
		return FloatValue(af + bf), ""
	case OpSub:
		return FloatValue(af - bf), ""
	case OpMul:
		return FloatValue(af * bf), ""
	case OpDiv:
		if bf == 0 {
			return Value{}, "divide by zero"
		}
		return FloatValue(af / bf), ""
	case OpMod:
		return Value{}, `can't use floating-point value as operand of "%"`
	}
	return Value{}, fmt.Sprintf("unknown operator %q", op.Name())
}

func applyIntOp(op BinOp, a, b Value) (Value, string) {
	an, aok := a.Numeric()
	bn, bok := b.Numeric()
	if !aok || !bok || an.kind != KInt || bn.kind != KInt {
		return Value{}, fmt.Sprintf("can't use non-integer value as operand of %q", op.Name())
	}
	ax, bx := an.Int(), bn.Int()
	switch op {
	case OpBitOr:
		return IntValue(ax | bx), ""
	case OpBitXor:
		return IntValue(ax ^ bx), ""
	case OpBitAnd:
		return IntValue(ax & bx), ""
	case OpShl:
		if bx < 0 || bx > 63 {
			return Value{}, fmt.Sprintf("invalid shift count %d", bx)
		}
		return IntValue(ax << uint(bx)), ""
	case OpShr:
		if bx < 0 || bx > 63 {
			return Value{}, fmt.Sprintf("invalid shift count %d", bx)
		}
		return IntValue(ax >> uint(bx)), ""
	}
	return Value{}, fmt.Sprintf("unknown operator %q", op.Name())
}

func applyCompare(op BinOp, a, b Value) (Value, string) {
	an, aok := a.Numeric()
	bn, bok := b.Numeric()
	var cmp int
	if aok && bok {
		if an.kind == KInt && bn.kind == KInt {
			switch ax, bx := an.Int(), bn.Int(); {
			case ax < bx:
				cmp = -1
			case ax > bx:
				cmp = 1
			}
		} else {
			af, bf := an.asFloat(), bn.asFloat()
			switch {
			case af < bf:
				cmp = -1
			case af > bf:
				cmp = 1
			}
		}
	} else {
		cmp = strings.Compare(a.Text(), b.Text())
	}
	switch op {
	case OpEq:
		return BoolValue(cmp == 0), ""
	case OpNe:
		return BoolValue(cmp != 0), ""
	case OpLt:
		return BoolValue(cmp < 0), ""
	case OpGt:
		return BoolValue(cmp > 0), ""
	case OpLe:
		return BoolValue(cmp <= 0), ""
	case OpGe:
		return BoolValue(cmp >= 0), ""
	}
	return Value{}, fmt.Sprintf("unknown comparison %q", op.Name())
}

// ApplyUnary evaluates a unary operator ('+', '-', '!', '~').
func ApplyUnary(op byte, v Value) (Value, string) {
	n, ok := v.Numeric()
	if !ok {
		return Value{}, fmt.Sprintf("can't use non-numeric string %q as operand of %q", v.Text(), string(op))
	}
	switch op {
	case '+':
		return n, ""
	case '-':
		if n.kind == KFloat {
			return FloatValue(-n.Float()), ""
		}
		return IntValue(-n.Int()), ""
	case '!':
		b, _ := n.Truth()
		return BoolValue(!b), ""
	case '~':
		if n.kind != KInt {
			return Value{}, `can't use floating-point value as operand of "~"`
		}
		return IntValue(^n.Int()), ""
	}
	return Value{}, fmt.Sprintf("unknown unary operator %q", string(op))
}

// ApplyMathFunc evaluates a math function call (abs, int, round, double).
// The unknown-name error happens here — at evaluation, never at compile —
// so untaken calls are free to name unknown functions.
func ApplyMathFunc(name string, arg Value) (Value, string) {
	n, ok := arg.Numeric()
	if !ok {
		return Value{}, fmt.Sprintf("argument to %s() is not numeric: %q", name, arg.Text())
	}
	switch name {
	case "abs":
		if n.kind == KFloat {
			return FloatValue(math.Abs(n.Float())), ""
		}
		if n.Int() < 0 {
			return IntValue(-n.Int()), ""
		}
		return n, ""
	case "int":
		return IntValue(int64(n.asFloat())), ""
	case "round":
		return IntValue(int64(math.Round(n.asFloat()))), ""
	case "double":
		return FloatValue(n.asFloat()), ""
	default:
		return Value{}, fmt.Sprintf("unknown math function %q", name)
	}
}
