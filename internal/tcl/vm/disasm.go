package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Disasm renders a compiled program as a stable, human-readable listing:
// the instruction stream followed by every pool that affects execution,
// with nested blocks and embedded expressions inlined recursively. The
// listing is a pure function of the program, which is what the golden
// tests and the compile→disasm→recompile stability check key on.
func Disasm(p *Program) string {
	var b strings.Builder
	writeProgram(&b, p, "")
	return b.String()
}

// DisasmExpr renders a compiled expression the same way.
func DisasmExpr(p *ExprProg) string {
	var b strings.Builder
	writeExpr(&b, p, "")
	return b.String()
}

func writeProgram(b *strings.Builder, p *Program, ind string) {
	fmt.Fprintf(b, "%sprogram regs=%d", ind, p.NRegs)
	if p.EndAtBracket {
		b.WriteString(" atbracket")
	}
	if p.Slots != (SlotCounts{}) {
		fmt.Fprintf(b, " slots{cmds=%d vars=%d specs=%d}",
			p.Slots.Cmds, p.Slots.Vars, p.Slots.Specs)
	}
	b.WriteByte('\n')
	for pc, in := range p.Code {
		fmt.Fprintf(b, "%s  %04d %-8s %s\n", ind, pc, in.Op, operands(p, in))
	}
	for k, v := range p.Consts {
		fmt.Fprintf(b, "%sconst c%d = %s\n", ind, k, valueString(v))
	}
	for k, n := range p.Names {
		fmt.Fprintf(b, "%sname n%d = %q\n", ind, k, n)
	}
	for k, w := range p.LitWords {
		fmt.Fprintf(b, "%swords w%d = %s\n", ind, k, quoteList(w))
	}
	for k, l := range p.Lists {
		fmt.Fprintf(b, "%slist l%d = %s\n", ind, k, quoteList(l))
	}
	for k, a := range p.Aux {
		fmt.Fprintf(b, "%saux a%d = name=%q lit=%d", ind, k, a.Name, a.LitIdx)
		if a.BracketOK {
			b.WriteString(" bracketok")
		}
		fmt.Fprintf(b, " cache=%d spec=%d\n", a.CacheSlot, a.SpecSlot)
	}
	for k, f := range p.Foreach {
		fmt.Fprintf(b, "%sforeach f%d = list=l%d var=n%d slot=%d\n",
			ind, k, f.List, f.Name, f.VarSlot)
	}
	for k, r := range p.Raises {
		fmt.Fprintf(b, "%sraise x%d = code=%d %q\n", ind, k, r.Code, r.Msg)
	}
	for k, bl := range p.Blocks {
		fmt.Fprintf(b, "%sblock b%d src=%q\n", ind, k, bl.Src)
		if bl.Prog != nil {
			writeProgram(b, bl.Prog, ind+"  ")
		}
	}
	for k, e := range p.Exprs {
		fmt.Fprintf(b, "%sexpr e%d\n", ind, k)
		writeExpr(b, e, ind+"  ")
	}
}

func operands(p *Program, in Instr) string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = c%d", in.Dst, in.A)
	case OpVarRead:
		return fmt.Sprintf("r%d = $n%d slot=%d", in.Dst, in.A, in.B)
	case OpArrRead:
		return fmt.Sprintf("r%d = $n%d(n%d) slot=%d", in.Dst, in.A, in.B, in.C)
	case OpConcat:
		return fmt.Sprintf("r%d = r%d..r%d", in.Dst, in.A, in.A+in.B-1)
	case OpBracket:
		return fmt.Sprintf("r%d = b%d", in.Dst, in.A)
	case OpInvoke:
		if in.B == 0 {
			return fmt.Sprintf("a%d lit", in.Dst)
		}
		return fmt.Sprintf("a%d args=r%d#%d", in.Dst, in.A, in.B)
	case OpCmd:
		return fmt.Sprintf("host#%d", in.A)
	case OpJump:
		return fmt.Sprintf("-> %04d", in.A)
	case OpRaise:
		return fmt.Sprintf("x%d", in.A)
	case OpSpecEnter:
		return fmt.Sprintf("a%d generic-> %04d", in.Dst, in.A)
	case OpTestExpr:
		return fmt.Sprintf("a%d e%d false-> %04d", in.Dst, in.A, in.B)
	case OpIfBody:
		return fmt.Sprintf("a%d b%d join-> %04d", in.Dst, in.A, in.B)
	case OpLoopBody:
		return fmt.Sprintf("a%d b%d back-> %04d", in.Dst, in.A, in.B)
	case OpForeachNext:
		return fmt.Sprintf("r%d f%d done-> %04d", in.Dst, in.A, in.B)
	case OpSpecDone:
		return fmt.Sprintf("a%d", in.Dst)
	case OpSetVar:
		return fmt.Sprintf("a%d $n%d = r%d slot=%d", in.Dst, in.A, in.B, in.C)
	case OpGetVar:
		return fmt.Sprintf("a%d $n%d slot=%d", in.Dst, in.A, in.C)
	case OpIncr:
		if in.B < 0 {
			return fmt.Sprintf("a%d $n%d += 1 slot=%d", in.Dst, in.A, in.C)
		}
		return fmt.Sprintf("a%d $n%d += c%d slot=%d", in.Dst, in.A, in.B, in.C)
	case OpExprCmd:
		return fmt.Sprintf("a%d e%d", in.Dst, in.A)
	default:
		return fmt.Sprintf("?%d,%d,%d,%d", in.Dst, in.A, in.B, in.C)
	}
}

func writeExpr(b *strings.Builder, p *ExprProg, ind string) {
	if !p.Lowered() {
		fmt.Fprintf(b, "%sexpr ast src=%q\n", ind, p.Src)
		return
	}
	fmt.Fprintf(b, "%sexpr regs=%d ctl=%d src=%q\n", ind, p.NRegs, p.NCtl, p.Src)
	for pc, in := range p.Code {
		fmt.Fprintf(b, "%s  %04d %-8s %s\n", ind, pc, in.Op, eoperands(in))
	}
	for k, v := range p.Consts {
		fmt.Fprintf(b, "%sconst c%d = %s\n", ind, k, valueString(v))
	}
	for k, n := range p.Names {
		fmt.Fprintf(b, "%sname n%d = %q\n", ind, k, n)
	}
	for k, f := range p.Funcs {
		fmt.Fprintf(b, "%sfunc m%d = %q\n", ind, k, f)
	}
	for k, bl := range p.Blocks {
		fmt.Fprintf(b, "%sblock b%d src=%q\n", ind, k, bl.Src)
		if bl.Prog != nil {
			writeProgram(b, bl.Prog, ind+"  ")
		}
	}
}

func eoperands(in EInstr) string {
	switch op := in.Op; {
	case op == EConst:
		return fmt.Sprintf("r%d = c%d", in.Dst, in.A)
	case op == EVar:
		return fmt.Sprintf("r%d = $n%d slot=%d", in.Dst, in.A, in.B)
	case op == EBracket:
		skip := ""
		if in.B == 0 {
			skip = " noskip"
		}
		return fmt.Sprintf("r%d = b%d%s", in.Dst, in.A, skip)
	case op == EUnary:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, string(byte(in.B)), in.A)
	case op >= EAdd && op <= EGe:
		return fmt.Sprintf("r%d = r%d %s r%d", in.Dst, in.A, BinOpOf(op).Name(), in.B)
	case op == EAndTest || op == EOrTest || op == ETernTest:
		return fmt.Sprintf("r%d", in.A)
	case op == EAndEnd || op == EOrEnd || op == ETernEnd:
		return fmt.Sprintf("r%d = r%d, r%d", in.Dst, in.A, in.B)
	case op == ETernElse:
		return ""
	case op == EFunc:
		return fmt.Sprintf("r%d = m%d(r%d)", in.Dst, in.B, in.A)
	case op == EEnd:
		return fmt.Sprintf("r%d", in.A)
	default:
		return fmt.Sprintf("?%d,%d,%d", in.Dst, in.A, in.B)
	}
}

func valueString(v Value) string {
	switch v.Kind() {
	case KInt:
		return "int " + strconv.FormatInt(v.Int(), 10)
	case KFloat:
		return "float " + FormatFloat(v.Float())
	default:
		return "str " + strconv.Quote(v.Text())
	}
}

func quoteList(items []string) string {
	parts := make([]string, len(items))
	for k, s := range items {
		parts[k] = strconv.Quote(s)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
