package vm

// Script machine -----------------------------------------------------------
//
// A compiled script is a flat instruction list over a small register file.
// Registers hold Values and are used only for building the words of one
// command at a time; control-flow specializations (if/while/foreach) are
// jump-threaded into the instruction stream so loop iterations never
// re-enter the generic dispatcher. Anything the compiler cannot express —
// words with computed array indices, commands carrying parse errors — is
// lowered to OpCmd, which replays the original compiled command through the
// classic substitution machinery. The fallback makes lowering total: every
// script compiles, and the bytecode's observable behavior (results, errors,
// ErrorInfo, step counts) is identical to the tree-walking evaluator's by
// construction at every point where the two diverge in speed.

// Op is a script-machine opcode.
type Op uint8

const (
	// OpConst loads a pooled constant: r[Dst] = Consts[A].
	OpConst Op = iota
	// OpVarRead reads scalar $Names[A] into r[Dst]; B is the variable
	// inline-cache slot. A failed read aborts the command like a classic
	// substitution error (no step charged, no ErrorInfo note).
	OpVarRead
	// OpArrRead reads array element $Names[A](Names[B]) into r[Dst]; C is
	// the variable inline-cache slot.
	OpArrRead
	// OpConcat joins r[A .. A+B) into r[Dst].
	OpConcat
	// OpBracket runs Blocks[A] as a [bracket] substitution into r[Dst]:
	// no script-level step, `return` accepted only when the block ends at
	// its ']'.
	OpBracket
	// OpInvoke dispatches a command through the inline cache in aux Dst.
	// Words are LitWords[aux.LitIdx] when every word is literal, else
	// r[A .. A+B). Equivalent to EvalWords on the substituted words.
	OpInvoke
	// OpCmd replays host command #A (one compiledCmd of the source script)
	// through the classic substitute-then-dispatch path. Universal
	// fallback; the host table lives alongside the program.
	OpCmd
	// OpJump continues at pc = A.
	OpJump
	// OpRaise returns Raises[A] as the script result (a deferred parse
	// error raised in source position).
	OpRaise
	// OpSpecEnter opens a specialized if/while/foreach: verify the command
	// word still binds the canonical builtin (slot aux.SpecSlot) and that
	// no Trace/DispatchHook is armed, then charge the dispatch step. On
	// guard failure the command runs generically and continues at pc = A.
	OpSpecEnter
	// OpTestExpr evaluates condition Exprs[A] as a boolean; false
	// continues at pc = B. Errors finish the command like a failed `if`.
	OpTestExpr
	// OpIfBody runs arm Blocks[A] with EvalScript framing; on OK the
	// result becomes the command result and control continues at pc = B.
	// Non-OK codes finish the command (the arm's code is `if`'s code).
	OpIfBody
	// OpLoopBody runs loop body Blocks[A]; OK/continue loops back to
	// pc = B, break falls through, return/error finish the command.
	OpLoopBody
	// OpForeachNext advances iteration state in counter r[Dst] over
	// Foreach[A]: assigns the next item or, when exhausted, continues at
	// pc = B.
	OpForeachNext
	// OpSpecDone completes a specialized command with an empty OK result.
	OpSpecDone
	// OpSetVar is specialized `set Names[A] r[B]` (var cache slot C).
	OpSetVar
	// OpGetVar is specialized one-argument `set Names[A]` (slot C).
	OpGetVar
	// OpIncr is specialized `incr Names[A]` by Consts[B] (slot C);
	// B < 0 means the default increment of 1.
	OpIncr
	// OpExprCmd is specialized `expr {…}` over Exprs[A].
	OpExprCmd
)

var opNames = [...]string{
	OpConst: "const", OpVarRead: "var", OpArrRead: "arr", OpConcat: "concat",
	OpBracket: "bracket", OpInvoke: "invoke", OpCmd: "cmd", OpJump: "jump",
	OpRaise: "raise", OpSpecEnter: "spec", OpTestExpr: "test",
	OpIfBody: "ifbody", OpLoopBody: "loop", OpForeachNext: "fornext",
	OpSpecDone: "done", OpSetVar: "setvar", OpGetVar: "getvar",
	OpIncr: "incr", OpExprCmd: "exprcmd",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "op?"
}

// Instr is one script-machine instruction. Field meaning is per-opcode.
type Instr struct {
	Op           Op
	Dst, A, B, C int32
}

// CmdAux is the per-command-site metadata shared by the ops of one
// compiled command: the dispatch name, the literal word list, the
// parser's bracket bookkeeping, and the inline-cache slots.
type CmdAux struct {
	// Name is the command word when literal ("" for computed names).
	Name string
	// LitIdx indexes LitWords when every word is literal, else -1.
	LitIdx int32
	// BracketOK mirrors compiledCmd.bracketOK: the command sits on the
	// terminating ']' of a bracketed script, so a `return` escaping it is
	// accepted by the enclosing substitution.
	BracketOK bool
	// CacheSlot is the command-dispatch inline-cache slot (-1 none).
	CacheSlot int32
	// SpecSlot is the canonical-builtin guard slot for specialized
	// commands (-1 none).
	SpecSlot int32
}

// ForeachAux is the iteration state layout of a specialized foreach.
type ForeachAux struct {
	List    int32 // Lists index: the pre-parsed literal item list
	Name    int32 // Names index: the loop variable
	VarSlot int32 // variable inline-cache slot for the loop variable
}

// Raise is a deferred parse error replayed in source position.
type Raise struct {
	Code int32 // tcl completion code (1 = error)
	Msg  string
}

// Block is a nested script: the lowered program plus its source text. The
// source is the compile→disasm→recompile identity key and the executor's
// last-resort fallback (re-entering EvalScript) if Prog is absent.
type Block struct {
	Prog *Program
	Src  string
}

// SlotCounts sizes the per-entry runtime cache arrays. Slots are numbered
// across the whole program tree (blocks and embedded expressions included),
// so only the root's counts matter.
type SlotCounts struct {
	Cmds, Vars, Specs int32
}

// Program is one compiled script. All pools are per-program; cache slot
// numbers are tree-global (see SlotCounts).
type Program struct {
	Code     []Instr
	Consts   []Value
	Names    []string
	LitWords [][]string
	Lists    [][]string
	Blocks   []Block
	Exprs    []*ExprProg
	Aux      []CmdAux
	Foreach  []ForeachAux
	Raises   []Raise
	// HostCmds counts the OpCmd fallback entries; the host-side table of
	// original commands is carried next to the program by its owner.
	HostCmds int32
	NRegs    int32
	// EndAtBracket mirrors compiledScript.endAtBracket: the script ended
	// on the ']' of a bracketed substitution.
	EndAtBracket bool
	// Slots is set on the root program only.
	Slots SlotCounts
}

// Expression machine -------------------------------------------------------
//
// Expressions compile to their own instruction set over Value registers,
// with the classic evaluator's laziness encoded as a runtime `taken` flag:
// &&, ||, and ?: push a control frame, flip takenness for the lazy side,
// and the join op selects or discards results exactly as the AST walker
// does. Untaken sides still execute — variable reads and operator
// application are skipped, value flow is preserved — so error order and
// side effects match the classic evaluator operator for operator.

// EOp is an expression-machine opcode.
type EOp uint8

const (
	// EConst loads Consts[A] (constants ignore takenness).
	EConst EOp = iota
	// EVar reads scalar $Names[A] (slot B); untaken sides skip the read
	// and yield 0.
	EVar
	// EBracket runs Blocks[A] as a [command] operand; B != 0 records that
	// the classic lexical skip of the untaken side would have succeeded.
	EBracket
	// EUnary applies operator byte B to r[A]; untaken passes r[A] through.
	EUnary
	// Binary operators, contiguous and in BinOp order: r[Dst] = r[A] op
	// r[B]; untaken sides yield r[A] (the lhs), matching the AST walker.
	EAdd
	ESub
	EMul
	EDiv
	EMod
	EBitOr
	EBitXor
	EBitAnd
	EShl
	EShr
	EEq
	ENe
	ELt
	EGt
	ELe
	EGe
	// EAndTest opens &&: tests r[A] when taken, pushes a control frame,
	// and untakes the rhs when the lhs is false.
	EAndTest
	// EAndEnd closes &&: pops the frame and combines r[A] (lhs) and r[B]
	// (rhs) into r[Dst].
	EAndEnd
	// EOrTest / EOrEnd are the || twins.
	EOrTest
	EOrEnd
	// ETernTest opens ?: on r[A]; ETernElse flips takenness for the else
	// arm; ETernEnd selects r[A] (then) or r[B] (else) into r[Dst].
	ETernTest
	ETernElse
	ETernEnd
	// EFunc applies math function Funcs[B] to r[A]; untaken yields 0.
	EFunc
	// EEnd finishes the expression with r[A].
	EEnd
)

var eopNames = [...]string{
	EConst: "const", EVar: "var", EBracket: "bracket", EUnary: "unary",
	EAdd: "add", ESub: "sub", EMul: "mul", EDiv: "div", EMod: "mod",
	EBitOr: "bitor", EBitXor: "bitxor", EBitAnd: "bitand",
	EShl: "shl", EShr: "shr", EEq: "eq", ENe: "ne", ELt: "lt", EGt: "gt",
	ELe: "le", EGe: "ge", EAndTest: "and?", EAndEnd: "and=",
	EOrTest: "or?", EOrEnd: "or=", ETernTest: "tern?", ETernElse: "tern:",
	ETernEnd: "tern=", EFunc: "func", EEnd: "end",
}

func (op EOp) String() string {
	if int(op) < len(eopNames) {
		return eopNames[op]
	}
	return "eop?"
}

// BinOpOf maps a binary-operator opcode to its BinOp.
func BinOpOf(op EOp) BinOp { return BinOp(op - EAdd) }

// EOpOf maps a BinOp to its expression opcode.
func EOpOf(op BinOp) EOp { return EAdd + EOp(op) }

// EInstr is one expression-machine instruction.
type EInstr struct {
	Op        EOp
	Dst, A, B int32
}

// ExprProg is one compiled expression. A nil Code means the expression
// uses a construct the compiler does not lower (quoted substitutions,
// computed array elements, parse errors); the executor then falls back to
// the classic AST for Src. Slot numbers are owned by the enclosing
// program tree (or by the standalone expression entry).
type ExprProg struct {
	Code   []EInstr
	Consts []Value
	Names  []string
	Funcs  []string
	Blocks []Block
	NRegs  int32
	NCtl   int32
	Src    string
}

// Lowered reports whether the expression compiled to bytecode.
func (p *ExprProg) Lowered() bool { return p != nil && p.Code != nil }
