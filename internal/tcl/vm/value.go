// Package vm defines the register bytecode the Tcl interpreter's third
// eval mode executes: a dual string/native Value representation, the
// instruction set for compiled scripts and expressions (constants pool,
// interned variable slots, jump-threaded control flow, inline-cached
// command dispatch), and a disassembler for golden tests.
//
// The package is deliberately host-free: it knows nothing about the
// interpreter (frames, commands, hooks). Programs are pure data produced
// by the compiler in package tcl and executed by the interpreter loop
// there; everything here — value arithmetic, opcode layout, disassembly —
// is a pure function, which is what makes compile→disasm→recompile
// stability testable and keeps the classic evaluator the sole semantic
// referee.
package vm

import (
	"math"
	"strconv"
	"strings"
)

// Kind is a Value's native representation.
type Kind uint8

const (
	// KString is a plain string with no (known) numeric interpretation.
	KString Kind = iota
	// KInt is a native int64; the string rep is materialized on demand.
	KInt
	// KFloat is a native float64; the string rep is materialized on demand.
	KFloat
)

// Value is the dual-representation Tcl value: every value can render as a
// string (Tcl's observable universe), but values produced by arithmetic
// keep their native int64/float64 so downstream operations skip the
// parse → compute → format round-trip. A Value mirrors the classic
// evaluator's exprValue exactly: a KInt/KFloat value carries no original
// string (the classic operandValue discards it too — "0x10" reads as 16
// and compares as "16"), so rendering is always canonical. The native
// payload is one uint64 holding either the int64 or the float64 bits; a
// KInt value may additionally carry its canonical rendering in s so
// repeated Text calls skip the format (see IntStringValue).
type Value struct {
	kind Kind
	bits uint64
	s    string
}

// StringValue wraps a string with no numeric claim.
func StringValue(s string) Value { return Value{kind: KString, s: s} }

// IntValue makes a native integer value.
func IntValue(i int64) Value { return Value{kind: KInt, bits: uint64(i)} }

// IntStringValue makes a native integer that already knows its canonical
// decimal rendering; s must equal strconv.FormatInt(i, 10).
func IntStringValue(i int64, s string) Value {
	return Value{kind: KInt, bits: uint64(i), s: s}
}

// FloatValue makes a native float value.
func FloatValue(f float64) Value { return Value{kind: KFloat, bits: math.Float64bits(f)} }

// BoolValue is Tcl's boolean: the integer 1 or 0.
func BoolValue(b bool) Value {
	if b {
		return IntValue(1)
	}
	return IntValue(0)
}

// Kind reports the native representation.
func (v Value) Kind() Kind { return v.kind }

// Int returns the native int64 (meaningful only for KInt).
func (v Value) Int() int64 { return int64(v.bits) }

// Float returns the native float64 (meaningful only for KFloat).
func (v Value) Float() float64 { return math.Float64frombits(v.bits) }

// Text renders the value as its Tcl string, materializing native numbers
// exactly the way the classic evaluator's exprValue.String does.
func (v Value) Text() string {
	switch v.kind {
	case KInt:
		if v.s != "" {
			return v.s
		}
		return strconv.FormatInt(int64(v.bits), 10)
	case KFloat:
		return FormatFloat(v.Float())
	default:
		return v.s
	}
}

// FormatFloat renders a float the way Tcl does: always distinguishable
// from an integer (a trailing ".0" if needed).
func FormatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	s := strconv.FormatFloat(f, 'g', 12, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// ParseNumber classifies a string as an integer or float literal, trying
// base-0 integers first exactly like the classic parseNumber.
func ParseNumber(s string) (Value, bool) {
	if s == "" {
		return Value{}, false
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return IntValue(i), true
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return FloatValue(f), true
	}
	return Value{}, false
}

// ClassifyOperand is operandValue: a substitution result whose (untrimmed)
// text parses as a number becomes that number, losing the original
// spelling; anything else stays a string.
func ClassifyOperand(s string) Value {
	if n, ok := ParseNumber(s); ok {
		return n
	}
	return StringValue(s)
}

// Numeric coerces v to a number if possible (trimming, as the classic
// exprValue.numeric does for strings).
func (v Value) Numeric() (Value, bool) {
	switch v.kind {
	case KInt, KFloat:
		return v, true
	default:
		return ParseNumber(strings.TrimSpace(v.s))
	}
}

func (v Value) asFloat() float64 {
	if v.kind == KFloat {
		return v.Float()
	}
	return float64(int64(v.bits))
}

// Truth interprets v as a boolean condition; the second return is the
// error message ("" on success), preformatted to match the classic
// evaluator's exprValue.truth.
func (v Value) Truth() (bool, string) {
	if n, ok := v.Numeric(); ok {
		if n.kind == KInt {
			return n.bits != 0, ""
		}
		return n.Float() != 0, ""
	}
	switch strings.ToLower(strings.TrimSpace(v.s)) {
	case "true", "yes", "on":
		return true, ""
	case "false", "no", "off":
		return false, ""
	}
	return false, "expected boolean value but got " + strconv.Quote(v.s)
}
