package tcl

import (
	"strconv"
	"strings"

	"repro/internal/tcl/vm"
)

// The bytecode lowering pass. lowerScript turns a compiled skeleton
// (compile.go) into a vm.Program; lowerExprText turns an expression AST
// (expr_ast.go) into a vm.ExprProg. Lowering is total by construction:
// any command the compiler cannot express in specialized ops — parse
// errors, poisoned words, computed array indices — becomes an OpCmd that
// replays the original compiledCmd through the classic substitution
// machinery, and any expression construct outside the lowered subset
// leaves a Code==nil ExprProg whose executor falls back to the AST. The
// classic evaluator therefore remains the sole semantic referee; the
// bytecode only ever reproduces it faster.
//
// Everything here is deterministic: pools are filled in first-use walk
// order and no map is ever iterated, which is what makes the golden
// compile→disasm→recompile stability test meaningful.

// vmPool carries the tree-global lowering state: inline-cache slot
// counters (numbered across the whole program tree, nested blocks and
// embedded expressions included) and the host table of OpCmd fallbacks.
type vmPool struct {
	cmdSlots  int32
	varSlots  int32
	specSlots int32
	hosts     []*compiledCmd
}

func (p *vmPool) cmdSlot() int32 { s := p.cmdSlots; p.cmdSlots++; return s }

func (p *vmPool) varSlot() int32 { s := p.varSlots; p.varSlots++; return s }

func (p *vmPool) specSlot() int32 { s := p.specSlots; p.specSlots++; return s }

func (p *vmPool) host(c *compiledCmd) int32 {
	p.hosts = append(p.hosts, c)
	return int32(len(p.hosts) - 1)
}

func (p *vmPool) counts() vm.SlotCounts {
	return vm.SlotCounts{Cmds: p.cmdSlots, Vars: p.varSlots, Specs: p.specSlots}
}

// lowerRootScript lowers a top-level skeleton, returning the program and
// the host table its OpCmd fallbacks replay.
func lowerRootScript(cs *compiledScript) (*vm.Program, []*compiledCmd) {
	pool := &vmPool{}
	p := lowerScript(cs, pool)
	p.Slots = pool.counts()
	return p, pool.hosts
}

// lowerRootExpr lowers a standalone expression (the vm expr cache entry).
func lowerRootExpr(src string) (*vm.ExprProg, []*compiledCmd, vm.SlotCounts) {
	pool := &vmPool{}
	p := lowerExprText(src, pool)
	return p, pool.hosts, pool.counts()
}

// progBuilder accumulates one vm.Program. Registers are a per-command
// scratch file: the counter resets to zero for every command and NRegs
// records the high-water mark.
type progBuilder struct {
	pool     *vmPool
	code     []vm.Instr
	consts   []vm.Value
	constIx  map[vm.Value]int32
	names    []string
	nameIx   map[string]int32
	litWords [][]string
	lists    [][]string
	blocks   []vm.Block
	exprs    []*vm.ExprProg
	aux      []vm.CmdAux
	foreach  []vm.ForeachAux
	raises   []vm.Raise
	hostCmds int32
	nreg     int32
	maxReg   int32
}

func lowerScript(cs *compiledScript, pool *vmPool) *vm.Program {
	b := &progBuilder{
		pool:    pool,
		constIx: make(map[vm.Value]int32),
		nameIx:  make(map[string]int32),
	}
	for k := range cs.cmds {
		b.lowerCmd(&cs.cmds[k])
	}
	if cs.parseErr != nil {
		b.emit(vm.Instr{Op: vm.OpRaise, A: b.raise(*cs.parseErr)})
	}
	return &vm.Program{
		Code: b.code, Consts: b.consts, Names: b.names,
		LitWords: b.litWords, Lists: b.lists, Blocks: b.blocks,
		Exprs: b.exprs, Aux: b.aux, Foreach: b.foreach, Raises: b.raises,
		HostCmds: b.hostCmds, NRegs: b.maxReg,
		EndAtBracket: cs.endAtBracket,
	}
}

func (b *progBuilder) emit(in vm.Instr) int32 {
	b.code = append(b.code, in)
	return int32(len(b.code) - 1)
}

func (b *progBuilder) reg() int32 {
	r := b.nreg
	b.nreg++
	if b.nreg > b.maxReg {
		b.maxReg = b.nreg
	}
	return r
}

func (b *progBuilder) konst(v vm.Value) int32 {
	if ix, ok := b.constIx[v]; ok {
		return ix
	}
	ix := int32(len(b.consts))
	b.consts = append(b.consts, v)
	b.constIx[v] = ix
	return ix
}

func (b *progBuilder) name(n string) int32 {
	if ix, ok := b.nameIx[n]; ok {
		return ix
	}
	ix := int32(len(b.names))
	b.names = append(b.names, n)
	b.nameIx[n] = ix
	return ix
}

func (b *progBuilder) words(w []string) int32 {
	b.litWords = append(b.litWords, w)
	return int32(len(b.litWords) - 1)
}

func (b *progBuilder) list(items []string) int32 {
	b.lists = append(b.lists, items)
	return int32(len(b.lists) - 1)
}

func (b *progBuilder) raise(res Result) int32 {
	b.raises = append(b.raises, vm.Raise{Code: int32(res.Code), Msg: res.Value})
	return int32(len(b.raises) - 1)
}

func (b *progBuilder) addAux(a vm.CmdAux) int32 {
	b.aux = append(b.aux, a)
	return int32(len(b.aux) - 1)
}

// block lowers an already-compiled nested script (a [bracket] segment).
func (b *progBuilder) block(cs *compiledScript, src string) int32 {
	b.blocks = append(b.blocks, vm.Block{Prog: lowerScript(cs, b.pool), Src: src})
	return int32(len(b.blocks) - 1)
}

// blockFromSrc compiles and lowers a body argument (if arm, loop body).
// The source rides along as the EvalScript-equivalent fallback key.
func (b *progBuilder) blockFromSrc(src string) int32 {
	return b.block(compileScript(src, false), src)
}

func (b *progBuilder) expr(src string) int32 {
	b.exprs = append(b.exprs, lowerExprText(src, b.pool))
	return int32(len(b.exprs) - 1)
}

// lowerCmd lowers one command: specialized ops when the shape allows,
// the generic inline-cached invoke otherwise, and the OpCmd classic
// replay for anything outside the lowered subset.
func (b *progBuilder) lowerCmd(cmd *compiledCmd) {
	if cmd.parseErr != nil || cmd.poisoned || !canLowerWords(cmd) {
		b.hostCmds++
		b.emit(vm.Instr{Op: vm.OpCmd, A: b.pool.host(cmd)})
		return
	}
	if b.trySpec(cmd) {
		return
	}
	b.lowerInvoke(cmd)
}

// canLowerWords reports whether every word of cmd lowers to register ops.
func canLowerWords(cmd *compiledCmd) bool {
	for k := range cmd.words {
		w := &cmd.words[k]
		if w.segs == nil {
			continue
		}
		for s := range w.segs {
			if !canLowerSeg(&w.segs[s]) {
				return false
			}
		}
	}
	return true
}

func canLowerSeg(s *wordSeg) bool {
	switch s.kind {
	case segLiteral, segScript:
		return true
	case segVar:
		// GetVar re-splits "a(b)" spellings from ${a(b)}; keep those on
		// the classic path so the split stays in one place.
		_, _, isElem := splitArrayRef(s.text)
		return !isElem
	case segVarArr:
		// Only literal (compile-time fixed) indices lower to OpArrRead.
		for k := range s.index {
			if s.index[k].kind != segLiteral {
				return false
			}
		}
		return true
	}
	// segVarArrOpen (and any future kind) stays on the classic path.
	return false
}

// lowerWordInto emits the ops that leave one word's value in dst.
func (b *progBuilder) lowerWordInto(w *compiledWord, dst int32) {
	if w.segs == nil {
		b.emit(vm.Instr{Op: vm.OpConst, Dst: dst, A: b.konst(vm.StringValue(w.lit))})
		return
	}
	if len(w.segs) == 1 {
		b.lowerSegInto(&w.segs[0], dst)
		return
	}
	base := b.nreg
	for k := range w.segs {
		b.lowerSegInto(&w.segs[k], b.reg())
	}
	b.emit(vm.Instr{Op: vm.OpConcat, Dst: dst, A: base, B: int32(len(w.segs))})
}

func (b *progBuilder) lowerSegInto(s *wordSeg, dst int32) {
	switch s.kind {
	case segLiteral:
		b.emit(vm.Instr{Op: vm.OpConst, Dst: dst, A: b.konst(vm.StringValue(s.text))})
	case segVar:
		b.emit(vm.Instr{Op: vm.OpVarRead, Dst: dst, A: b.name(s.text), B: b.pool.varSlot()})
	case segVarArr:
		var idx strings.Builder
		for k := range s.index {
			idx.WriteString(s.index[k].text)
		}
		b.emit(vm.Instr{
			Op: vm.OpArrRead, Dst: dst,
			A: b.name(s.text), B: b.name(idx.String()), C: b.pool.varSlot(),
		})
	case segScript:
		b.emit(vm.Instr{Op: vm.OpBracket, Dst: dst, A: b.block(s.script, "")})
	}
}

// lowerInvoke emits the generic inline-cached dispatch of one command.
func (b *progBuilder) lowerInvoke(cmd *compiledCmd) {
	b.nreg = 0
	aux := vm.CmdAux{
		LitIdx: -1, BracketOK: cmd.bracketOK,
		CacheSlot: b.pool.cmdSlot(), SpecSlot: -1,
	}
	if cmd.litWords != nil {
		aux.Name = cmd.litWords[0]
		aux.LitIdx = b.words(cmd.litWords)
		b.emit(vm.Instr{Op: vm.OpInvoke, Dst: b.addAux(aux)})
		return
	}
	if cmd.words[0].segs == nil {
		aux.Name = cmd.words[0].lit
	}
	base := b.nreg
	n := int32(len(cmd.words))
	dsts := make([]int32, n)
	for k := range dsts {
		dsts[k] = b.reg()
	}
	for k := range cmd.words {
		b.lowerWordInto(&cmd.words[k], dsts[k])
	}
	b.emit(vm.Instr{Op: vm.OpInvoke, Dst: b.addAux(aux), A: base, B: n})
}

// --- command specializations --------------------------------------------

func (b *progBuilder) trySpec(cmd *compiledCmd) bool {
	w0 := &cmd.words[0]
	if w0.segs != nil {
		return false
	}
	switch w0.lit {
	case "set":
		return b.trySet(cmd)
	case "incr":
		return b.tryIncr(cmd)
	case "expr":
		return b.tryExpr(cmd)
	case "if":
		return b.tryIf(cmd)
	case "while":
		return b.tryWhile(cmd)
	case "foreach":
		return b.tryForeach(cmd)
	}
	return false
}

// specAux builds the shared aux record of one specialized command site.
func (b *progBuilder) specAux(name string, cmd *compiledCmd) vm.CmdAux {
	aux := vm.CmdAux{
		Name: name, LitIdx: -1, BracketOK: cmd.bracketOK,
		CacheSlot: -1, SpecSlot: b.pool.specSlot(),
	}
	if cmd.litWords != nil {
		aux.LitIdx = b.words(cmd.litWords)
	}
	return aux
}

// plainVarName reports that name is a plain scalar (no "a(b)" split).
func plainVarName(name string) bool {
	_, _, isElem := splitArrayRef(name)
	return !isElem
}

func (b *progBuilder) trySet(cmd *compiledCmd) bool {
	n := len(cmd.words)
	if n != 2 && n != 3 {
		return false
	}
	nameWord := &cmd.words[1]
	if nameWord.segs != nil || !plainVarName(nameWord.lit) {
		return false
	}
	b.nreg = 0
	aux := b.specAux("set", cmd)
	if n == 2 {
		b.emit(vm.Instr{
			Op: vm.OpGetVar, Dst: b.addAux(aux),
			A: b.name(nameWord.lit), C: b.pool.varSlot(),
		})
		return true
	}
	src := b.reg()
	b.lowerWordInto(&cmd.words[2], src)
	b.emit(vm.Instr{
		Op: vm.OpSetVar, Dst: b.addAux(aux),
		A: b.name(nameWord.lit), B: src, C: b.pool.varSlot(),
	})
	return true
}

func (b *progBuilder) tryIncr(cmd *compiledCmd) bool {
	args := cmd.litWords
	if args == nil || len(args) < 2 || len(args) > 3 || !plainVarName(args[1]) {
		return false
	}
	delta := int32(-1)
	if len(args) == 3 {
		d, err := strconv.ParseInt(strings.TrimSpace(args[2]), 0, 64)
		if err != nil {
			// The error depends on the variable's state at runtime
			// (cmdIncr reads the variable first); stay generic.
			return false
		}
		delta = b.konst(vm.IntValue(d))
	}
	b.nreg = 0
	b.emit(vm.Instr{
		Op: vm.OpIncr, Dst: b.addAux(b.specAux("incr", cmd)),
		A: b.name(args[1]), B: delta, C: b.pool.varSlot(),
	})
	return true
}

func (b *progBuilder) tryExpr(cmd *compiledCmd) bool {
	args := cmd.litWords
	if args == nil || len(args) < 2 {
		return false
	}
	b.nreg = 0
	text := strings.Join(args[1:], " ")
	b.emit(vm.Instr{
		Op: vm.OpExprCmd, Dst: b.addAux(b.specAux("expr", cmd)),
		A: b.expr(text),
	})
	return true
}

// parseIfChain accepts exactly the fully well-formed if grammars — the
// shapes where cmdIf's parse can never produce an arity or noise-word
// error regardless of which condition fires. Anything else (including
// shapes whose malformed tail cmdIf would ignore when an earlier
// condition is true) stays on the generic path, where cmdIf itself
// reproduces the classic behavior.
func parseIfChain(args []string) (conds, bodies []string, elseBody string, hasElse, ok bool) {
	a := args[1:]
	for {
		if len(a) == 0 {
			return nil, nil, "", false, false
		}
		cond := a[0]
		a = a[1:]
		if len(a) > 0 && a[0] == "then" {
			a = a[1:]
		}
		if len(a) == 0 {
			return nil, nil, "", false, false
		}
		conds = append(conds, cond)
		bodies = append(bodies, a[0])
		a = a[1:]
		if len(a) == 0 {
			return conds, bodies, "", false, true
		}
		switch a[0] {
		case "elseif":
			a = a[1:]
			continue
		case "else":
			a = a[1:]
			if len(a) != 1 {
				return nil, nil, "", false, false
			}
			return conds, bodies, a[0], true, true
		default:
			if len(a) == 1 {
				// Bare else body, old-Tcl style.
				return conds, bodies, a[0], true, true
			}
			return nil, nil, "", false, false
		}
	}
}

func (b *progBuilder) tryIf(cmd *compiledCmd) bool {
	if cmd.litWords == nil {
		return false
	}
	conds, bodies, elseBody, hasElse, ok := parseIfChain(cmd.litWords)
	if !ok {
		return false
	}
	b.nreg = 0
	auxIdx := b.addAux(b.specAux("if", cmd))
	enter := b.emit(vm.Instr{Op: vm.OpSpecEnter, Dst: auxIdx})
	var joinPatch []int32
	for k := range conds {
		test := b.emit(vm.Instr{Op: vm.OpTestExpr, Dst: auxIdx, A: b.expr(conds[k])})
		body := b.emit(vm.Instr{Op: vm.OpIfBody, Dst: auxIdx, A: b.blockFromSrc(bodies[k])})
		joinPatch = append(joinPatch, body)
		b.code[test].B = int32(len(b.code))
	}
	if hasElse {
		body := b.emit(vm.Instr{Op: vm.OpIfBody, Dst: auxIdx, A: b.blockFromSrc(elseBody)})
		joinPatch = append(joinPatch, body)
	} else {
		b.emit(vm.Instr{Op: vm.OpSpecDone, Dst: auxIdx})
	}
	join := int32(len(b.code))
	b.code[enter].A = join
	for _, pc := range joinPatch {
		b.code[pc].B = join
	}
	return true
}

func (b *progBuilder) tryWhile(cmd *compiledCmd) bool {
	args := cmd.litWords
	if args == nil || len(args) != 3 {
		return false
	}
	b.nreg = 0
	auxIdx := b.addAux(b.specAux("while", cmd))
	enter := b.emit(vm.Instr{Op: vm.OpSpecEnter, Dst: auxIdx})
	test := b.emit(vm.Instr{Op: vm.OpTestExpr, Dst: auxIdx, A: b.expr(args[1])})
	b.emit(vm.Instr{Op: vm.OpLoopBody, Dst: auxIdx, A: b.blockFromSrc(args[2]), B: test})
	b.code[test].B = int32(len(b.code)) // false -> SpecDone
	b.emit(vm.Instr{Op: vm.OpSpecDone, Dst: auxIdx})
	b.code[enter].A = int32(len(b.code))
	return true
}

func (b *progBuilder) tryForeach(cmd *compiledCmd) bool {
	args := cmd.litWords
	if args == nil || len(args) != 4 || !plainVarName(args[1]) {
		return false
	}
	items, err := ParseList(args[2])
	if err != nil {
		return false
	}
	b.nreg = 0
	auxIdx := b.addAux(b.specAux("foreach", cmd))
	b.foreach = append(b.foreach, vm.ForeachAux{
		List: b.list(items), Name: b.name(args[1]), VarSlot: b.pool.varSlot(),
	})
	fIdx := int32(len(b.foreach) - 1)
	ctr := b.reg()
	enter := b.emit(vm.Instr{Op: vm.OpSpecEnter, Dst: auxIdx})
	b.emit(vm.Instr{Op: vm.OpConst, Dst: ctr, A: b.konst(vm.IntValue(0))})
	next := b.emit(vm.Instr{Op: vm.OpForeachNext, Dst: ctr, A: fIdx})
	b.emit(vm.Instr{Op: vm.OpLoopBody, Dst: auxIdx, A: b.blockFromSrc(args[3]), B: next})
	b.code[next].B = int32(len(b.code)) // exhausted -> SpecDone
	b.emit(vm.Instr{Op: vm.OpSpecDone, Dst: auxIdx})
	b.code[enter].A = int32(len(b.code))
	return true
}

// --- expression lowering ------------------------------------------------

// lowerExprText compiles an expression to bytecode, or to an AST-fallback
// entry (Code == nil) when the tree uses constructs outside the lowered
// subset: quoted strings (which substitute even untaken), computed array
// elements, parse errors, and ternaries cut short before their ':'.
func lowerExprText(src string, pool *vmPool) *vm.ExprProg {
	p := &vm.ExprProg{Src: src}
	ast := compileExpr(src)
	if !canLowerExprNode(ast.root) {
		return p
	}
	b := &exprBuilder{
		pool:    pool,
		constIx: make(map[vm.Value]int32),
		nameIx:  make(map[string]int32),
		funcIx:  make(map[string]int32),
	}
	root := b.lower(ast.root)
	b.code = append(b.code, vm.EInstr{Op: vm.EEnd, A: root})
	p.Code = b.code
	p.Consts = b.consts
	p.Names = b.names
	p.Funcs = b.funcs
	p.Blocks = b.blocks
	p.NRegs = b.nreg
	p.NCtl = b.maxCtl
	return p
}

func canLowerExprNode(n exprNode) bool {
	switch t := n.(type) {
	case litNode:
		return true
	case *varNode:
		return t.seg.kind == segVar && plainVarName(t.seg.text)
	case *bracketNode:
		return true
	case *unNode:
		return canLowerExprNode(t.operand)
	case *binNode:
		if _, ok := vm.BinOpByName(t.op); !ok {
			return false
		}
		return canLowerExprNode(t.lhs) && canLowerExprNode(t.rhs)
	case *andNode:
		return canLowerExprNode(t.lhs) && canLowerExprNode(t.rhs)
	case *orNode:
		return canLowerExprNode(t.lhs) && canLowerExprNode(t.rhs)
	case *ternNode:
		return t.right != nil && canLowerExprNode(t.cond) &&
			canLowerExprNode(t.left) && canLowerExprNode(t.right)
	case *funcNode:
		return canLowerExprNode(t.arg)
	}
	return false
}

func vmValueOf(v exprValue) vm.Value {
	switch v.kind {
	case vInt:
		return vm.IntValue(v.i)
	case vFloat:
		return vm.FloatValue(v.f)
	default:
		return vm.StringValue(v.s)
	}
}

// foldExprNode evaluates a constant subtree at compile time. Folding only
// succeeds when every operator application succeeds, so a folded subtree
// is provably side-effect- and error-free; its untaken-side value can
// differ from the AST walker's (which threads lhs values through untaken
// operators), but untaken values are discarded at every lazy join, so the
// difference is unobservable.
func foldExprNode(n exprNode) (vm.Value, bool) {
	switch t := n.(type) {
	case litNode:
		return vmValueOf(t.v), true
	case *unNode:
		v, ok := foldExprNode(t.operand)
		if !ok {
			return vm.Value{}, false
		}
		out, msg := vm.ApplyUnary(t.op, v)
		return out, msg == ""
	case *binNode:
		op, ok := vm.BinOpByName(t.op)
		if !ok {
			return vm.Value{}, false
		}
		a, aok := foldExprNode(t.lhs)
		c, cok := foldExprNode(t.rhs)
		if !aok || !cok {
			return vm.Value{}, false
		}
		out, msg := vm.ApplyBinary(op, a, c)
		return out, msg == ""
	case *funcNode:
		a, ok := foldExprNode(t.arg)
		if !ok {
			return vm.Value{}, false
		}
		out, msg := vm.ApplyMathFunc(t.name, a)
		return out, msg == ""
	}
	return vm.Value{}, false
}

type exprBuilder struct {
	pool    *vmPool
	code    []vm.EInstr
	consts  []vm.Value
	constIx map[vm.Value]int32
	names   []string
	nameIx  map[string]int32
	funcs   []string
	funcIx  map[string]int32
	blocks  []vm.Block
	nreg    int32
	ctl     int32
	maxCtl  int32
}

func (b *exprBuilder) reg() int32 {
	r := b.nreg
	b.nreg++
	return r
}

func (b *exprBuilder) konst(v vm.Value) int32 {
	if ix, ok := b.constIx[v]; ok {
		return ix
	}
	ix := int32(len(b.consts))
	b.consts = append(b.consts, v)
	b.constIx[v] = ix
	return ix
}

func (b *exprBuilder) name(n string) int32 {
	if ix, ok := b.nameIx[n]; ok {
		return ix
	}
	ix := int32(len(b.names))
	b.names = append(b.names, n)
	b.nameIx[n] = ix
	return ix
}

func (b *exprBuilder) fn(n string) int32 {
	if ix, ok := b.funcIx[n]; ok {
		return ix
	}
	ix := int32(len(b.funcs))
	b.funcs = append(b.funcs, n)
	b.funcIx[n] = ix
	return ix
}

func (b *exprBuilder) pushCtl() {
	b.ctl++
	if b.ctl > b.maxCtl {
		b.maxCtl = b.ctl
	}
}

func (b *exprBuilder) popCtl() { b.ctl-- }

// lower emits the ops evaluating n and returns the result register.
// Callers guarantee canLowerExprNode(n).
func (b *exprBuilder) lower(n exprNode) int32 {
	if v, ok := foldExprNode(n); ok {
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{Op: vm.EConst, Dst: dst, A: b.konst(v)})
		return dst
	}
	switch t := n.(type) {
	case *varNode:
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{
			Op: vm.EVar, Dst: dst, A: b.name(t.seg.text), B: b.pool.varSlot(),
		})
		return dst
	case *bracketNode:
		b.blocks = append(b.blocks, vm.Block{Prog: lowerScript(t.script, b.pool)})
		blk := int32(len(b.blocks) - 1)
		skip := int32(0)
		if t.skipOK {
			skip = 1
		}
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{Op: vm.EBracket, Dst: dst, A: blk, B: skip})
		return dst
	case *unNode:
		a := b.lower(t.operand)
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{Op: vm.EUnary, Dst: dst, A: a, B: int32(t.op)})
		return dst
	case *binNode:
		op, _ := vm.BinOpByName(t.op)
		a := b.lower(t.lhs)
		c := b.lower(t.rhs)
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{Op: vm.EOpOf(op), Dst: dst, A: a, B: c})
		return dst
	case *andNode:
		a := b.lower(t.lhs)
		b.code = append(b.code, vm.EInstr{Op: vm.EAndTest, A: a})
		b.pushCtl()
		c := b.lower(t.rhs)
		b.popCtl()
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{Op: vm.EAndEnd, Dst: dst, A: a, B: c})
		return dst
	case *orNode:
		a := b.lower(t.lhs)
		b.code = append(b.code, vm.EInstr{Op: vm.EOrTest, A: a})
		b.pushCtl()
		c := b.lower(t.rhs)
		b.popCtl()
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{Op: vm.EOrEnd, Dst: dst, A: a, B: c})
		return dst
	case *ternNode:
		c := b.lower(t.cond)
		b.code = append(b.code, vm.EInstr{Op: vm.ETernTest, A: c})
		b.pushCtl()
		l := b.lower(t.left)
		b.code = append(b.code, vm.EInstr{Op: vm.ETernElse})
		r := b.lower(t.right)
		b.popCtl()
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{Op: vm.ETernEnd, Dst: dst, A: l, B: r})
		return dst
	case *funcNode:
		a := b.lower(t.arg)
		dst := b.reg()
		b.code = append(b.code, vm.EInstr{Op: vm.EFunc, Dst: dst, A: a, B: b.fn(t.name)})
		return dst
	}
	// Unreachable: canLowerExprNode gates every call.
	dst := b.reg()
	b.code = append(b.code, vm.EInstr{Op: vm.EConst, Dst: dst, A: b.konst(vm.IntValue(0))})
	return dst
}
