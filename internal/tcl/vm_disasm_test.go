package tcl

import (
	"testing"

	"repro/internal/tcl/vm"
)

// The golden disassemblies pin the lowered form of one exemplar per
// opcode family. They are deliberately exact: register numbering, pool
// interning order, jump targets, and slot assignment are all part of the
// compiler's contract with the executor, and an unintentional change to
// any of them shows up here as a readable diff rather than as a perf or
// semantics surprise downstream.
var disasmScriptGoldens = []struct {
	src    string
	golden string
}{
	{
		// literal set (const/setvar)
		src: "set a 1",
		golden: `program regs=1 slots{cmds=0 vars=1 specs=1}
  0000 const    r0 = c0
  0001 setvar   a0 $n0 = r0 slot=0
const c0 = str "1"
name n0 = "a"
words w0 = ["set" "a" "1"]
aux a0 = name="set" lit=0 cache=-1 spec=0
`,
	},
	{
		// variable copy (var/setvar)
		src: "set x $y",
		golden: `program regs=1 slots{cmds=0 vars=2 specs=1}
  0000 var      r0 = $n0 slot=0
  0001 setvar   a0 $n1 = r0 slot=1
name n0 = "y"
name n1 = "x"
aux a0 = name="set" lit=-1 cache=-1 spec=0
`,
	},
	{
		// literal incr
		src: "incr n 2",
		golden: `program regs=0 slots{cmds=0 vars=1 specs=1}
  0000 incr     a0 $n0 += c0 slot=0
const c0 = int 2
name n0 = "n"
words w0 = ["incr" "n" "2"]
aux a0 = name="incr" lit=0 cache=-1 spec=0
`,
	},
	{
		// bracket + exprcmd
		src: "set b [expr {$a + 1}]",
		golden: `program regs=1 slots{cmds=0 vars=2 specs=2}
  0000 bracket  r0 = b0
  0001 setvar   a0 $n0 = r0 slot=1
name n0 = "b"
aux a0 = name="set" lit=-1 cache=-1 spec=0
block b0 src=""
  program regs=0 atbracket
    0000 exprcmd  a0 e0
  words w0 = ["expr" "$a + 1"]
  aux a0 = name="expr" lit=0 bracketok cache=-1 spec=1
  expr e0
    expr regs=3 ctl=0 src="$a + 1"
      0000 var      r0 = $n0 slot=0
      0001 const    r1 = c0
      0002 add      r2 = r0 + r1
      0003 end      r2
    const c0 = int 1
    name n0 = "a"
`,
	},
	{
		// if/else (spec/test/ifbody)
		src: "if {$a < 10} { incr a } else { set a 0 }",
		golden: `program regs=0 slots{cmds=0 vars=3 specs=3}
  0000 spec     a0 generic-> 0004
  0001 test     a0 e0 false-> 0003
  0002 ifbody   a0 b0 join-> 0004
  0003 ifbody   a0 b1 join-> 0004
words w0 = ["if" "$a < 10" " incr a " "else" " set a 0 "]
aux a0 = name="if" lit=0 cache=-1 spec=0
block b0 src=" incr a "
  program regs=0
    0000 incr     a0 $n0 += 1 slot=1
  name n0 = "a"
  words w0 = ["incr" "a"]
  aux a0 = name="incr" lit=0 cache=-1 spec=1
block b1 src=" set a 0 "
  program regs=1
    0000 const    r0 = c0
    0001 setvar   a0 $n0 = r0 slot=2
  const c0 = str "0"
  name n0 = "a"
  words w0 = ["set" "a" "0"]
  aux a0 = name="set" lit=0 cache=-1 spec=2
expr e0
  expr regs=3 ctl=0 src="$a < 10"
    0000 var      r0 = $n0 slot=0
    0001 const    r1 = c0
    0002 lt       r2 = r0 < r1
    0003 end      r2
  const c0 = int 10
  name n0 = "a"
`,
	},
	{
		// while (loop/done)
		src: "while {$i > 0} { incr i -1 }",
		golden: `program regs=0 slots{cmds=0 vars=2 specs=2}
  0000 spec     a0 generic-> 0004
  0001 test     a0 e0 false-> 0003
  0002 loop     a0 b0 back-> 0001
  0003 done     a0
words w0 = ["while" "$i > 0" " incr i -1 "]
aux a0 = name="while" lit=0 cache=-1 spec=0
block b0 src=" incr i -1 "
  program regs=0
    0000 incr     a0 $n0 += c0 slot=1
  const c0 = int -1
  name n0 = "i"
  words w0 = ["incr" "i" "-1"]
  aux a0 = name="incr" lit=0 cache=-1 spec=1
expr e0
  expr regs=3 ctl=0 src="$i > 0"
    0000 var      r0 = $n0 slot=0
    0001 const    r1 = c0
    0002 gt       r2 = r0 > r1
    0003 end      r2
  const c0 = int 0
  name n0 = "i"
`,
	},
	{
		// foreach (fornext) + generic invoke
		src: "foreach v {1 2 3} { incr sum $v }",
		golden: `program regs=1 slots{cmds=1 vars=2 specs=1}
  0000 spec     a0 generic-> 0005
  0001 const    r0 = c0
  0002 fornext  r0 f0 done-> 0004
  0003 loop     a0 b0 back-> 0002
  0004 done     a0
const c0 = int 0
name n0 = "v"
words w0 = ["foreach" "v" "1 2 3" " incr sum $v "]
list l0 = ["1" "2" "3"]
aux a0 = name="foreach" lit=0 cache=-1 spec=0
foreach f0 = list=l0 var=n0 slot=0
block b0 src=" incr sum $v "
  program regs=3
    0000 const    r0 = c0
    0001 const    r1 = c1
    0002 var      r2 = $n0 slot=1
    0003 invoke   a0 args=r0#3
  const c0 = str "incr"
  const c1 = str "sum"
  name n0 = "v"
  aux a0 = name="incr" lit=-1 cache=0 spec=-1
`,
	},
	{
		// interpolation (concat) + invoke
		src: "puts \"hi $name\"",
		golden: `program regs=4 slots{cmds=1 vars=1 specs=0}
  0000 const    r0 = c0
  0001 const    r2 = c1
  0002 var      r3 = $n0 slot=0
  0003 concat   r1 = r2..r3
  0004 invoke   a0 args=r0#2
const c0 = str "puts"
const c1 = str "hi "
name n0 = "name"
aux a0 = name="puts" lit=-1 cache=0 spec=-1
`,
	},
	{
		// literal invoke
		src: "lappend l a b",
		golden: `program regs=0 slots{cmds=1 vars=0 specs=0}
  0000 invoke   a0 lit
words w0 = ["lappend" "l" "a" "b"]
aux a0 = name="lappend" lit=0 cache=0 spec=-1
`,
	},
	{
		// array read (arr)
		src: "set a(k) 3; puts $a(k)",
		golden: `program regs=2 slots{cmds=2 vars=1 specs=0}
  0000 invoke   a0 lit
  0001 const    r0 = c0
  0002 arr      r1 = $n0(n1) slot=0
  0003 invoke   a1 args=r0#2
const c0 = str "puts"
name n0 = "a"
name n1 = "k"
words w0 = ["set" "a(k)" "3"]
aux a0 = name="set" lit=0 cache=0 spec=-1
aux a1 = name="puts" lit=-1 cache=1 spec=-1
`,
	},
}

var disasmExprGoldens = []struct {
	src    string
	golden string
}{
	{
		// arithmetic (const/var/mul/add)
		src: "1 + 2 * $x",
		golden: `expr regs=5 ctl=0 src="1 + 2 * $x"
  0000 const    r0 = c0
  0001 const    r1 = c1
  0002 var      r2 = $n0 slot=0
  0003 mul      r3 = r1 * r2
  0004 add      r4 = r0 + r3
  0005 end      r4
const c0 = int 1
const c1 = int 2
name n0 = "x"
`,
	},
	{
		// lazy and (and?/and=)
		src: "$a < 5 && $b",
		golden: `expr regs=5 ctl=1 src="$a < 5 && $b"
  0000 var      r0 = $n0 slot=0
  0001 const    r1 = c0
  0002 lt       r2 = r0 < r1
  0003 and?     r2
  0004 var      r3 = $n1 slot=1
  0005 and=     r4 = r2, r3
  0006 end      r4
const c0 = int 5
name n0 = "a"
name n1 = "b"
`,
	},
	{
		// ternary (tern?/tern:/tern=)
		src: "$x ? $y : 0",
		golden: `expr regs=4 ctl=1 src="$x ? $y : 0"
  0000 var      r0 = $n0 slot=0
  0001 tern?    r0
  0002 var      r1 = $n1 slot=1
  0003 tern:    
  0004 const    r2 = c0
  0005 tern=    r3 = r1, r2
  0006 end      r3
const c0 = int 0
name n0 = "x"
name n1 = "y"
`,
	},
	{
		// unary + math func
		src: "abs(-$n)",
		golden: `expr regs=3 ctl=0 src="abs(-$n)"
  0000 var      r0 = $n0 slot=0
  0001 unary    r1 = - r0
  0002 func     r2 = m0(r1)
  0003 end      r2
name n0 = "n"
func m0 = "abs"
`,
	},
	{
		// command bracket
		src: "[cmd] + 1",
		golden: `expr regs=3 ctl=0 src="[cmd] + 1"
  0000 bracket  r0 = b0
  0001 const    r1 = c0
  0002 add      r2 = r0 + r1
  0003 end      r2
const c0 = int 1
block b0 src=""
  program regs=0 atbracket
    0000 invoke   a0 lit
  words w0 = ["cmd"]
  aux a0 = name="cmd" lit=0 bracketok cache=0 spec=-1
`,
	},
}

func TestVMDisasmGolden(t *testing.T) {
	for _, tc := range disasmScriptGoldens {
		p, _ := lowerRootScript(compileScript(tc.src, false))
		if got := vm.Disasm(p); got != tc.golden {
			t.Errorf("script %q disassembly changed:\n--- want ---\n%s--- got ---\n%s", tc.src, tc.golden, got)
		}
	}
	for _, tc := range disasmExprGoldens {
		p, _, _ := lowerRootExpr(tc.src)
		if got := vm.DisasmExpr(p); got != tc.golden {
			t.Errorf("expr %q disassembly changed:\n--- want ---\n%s--- got ---\n%s", tc.src, tc.golden, got)
		}
	}
}

// TestVMDisasmStability lowers every golden source twice from scratch and
// requires byte-identical disassembly: compilation must be a pure
// function of the source, with no ordering dependence on interning maps
// or other iteration-order hazards.
func TestVMDisasmStability(t *testing.T) {
	for _, tc := range disasmScriptGoldens {
		a, _ := lowerRootScript(compileScript(tc.src, false))
		b, _ := lowerRootScript(compileScript(tc.src, false))
		if vm.Disasm(a) != vm.Disasm(b) {
			t.Errorf("script %q: two lowerings disagree:\n%s\nvs\n%s", tc.src, vm.Disasm(a), vm.Disasm(b))
		}
	}
	for _, tc := range disasmExprGoldens {
		a, _, _ := lowerRootExpr(tc.src)
		b, _, _ := lowerRootExpr(tc.src)
		if vm.DisasmExpr(a) != vm.DisasmExpr(b) {
			t.Errorf("expr %q: two lowerings disagree:\n%s\nvs\n%s", tc.src, vm.DisasmExpr(a), vm.DisasmExpr(b))
		}
	}
}
