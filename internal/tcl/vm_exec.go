package tcl

import (
	"reflect"
	"strconv"
	"strings"

	"repro/internal/lru"
	"repro/internal/tcl/vm"
)

// The bytecode executor: the interpreter loop for vm.Program and
// vm.ExprProg, plus the inline-cache runtime the compiled slots index.
// Observable behavior — results, error strings, ErrorInfo notes, step
// charges, trace/dispatch-hook events — matches the classic evaluator's
// at every point; the differential conformance matrix and the
// FuzzVMEquivalence harness hold that equality byte for byte.
//
// Alongside the Result string, program execution threads an optional
// native value for the final command result (numOK below). The channel
// carries only KInt values whose canonical rendering equals the Result
// string, so a consumer may substitute the native value for the string
// without changing any observable rendering or numeric classification.

// EvalMode selects the evaluation engine behind EvalScript and expr.
type EvalMode uint8

const (
	// EvalCached is the default: parse-once skeletons and expr ASTs,
	// memoized by source text, replayed by the tree walker.
	EvalCached EvalMode = iota
	// EvalClassic re-parses every script on every evaluation — the frozen
	// referee the other modes are proven against.
	EvalClassic
	// EvalVM lowers cached skeletons to register bytecode with inline
	// caches and native numeric values.
	EvalVM
)

func (m EvalMode) String() string {
	switch m {
	case EvalClassic:
		return "classic"
	case EvalVM:
		return "vm"
	default:
		return "cached"
	}
}

// ParseEvalMode maps the -evalmode flag spellings to a mode.
func ParseEvalMode(s string) (EvalMode, bool) {
	switch s {
	case "classic":
		return EvalClassic, true
	case "cached":
		return EvalCached, true
	case "vm":
		return EvalVM, true
	}
	return EvalCached, false
}

// SetEvalMode selects the evaluation engine. Entering vm mode allocates
// the bytecode caches (and restores the compile caches if they were
// disabled, since the vm compiles through them).
func (i *Interp) SetEvalMode(m EvalMode) {
	i.evalMode = m
	i.vmFront, i.vmFrontKey = nil, ""
	i.vmExprFront, i.vmExprFrontKey = nil, ""
	if m != EvalVM {
		return
	}
	if i.evalCache == nil {
		i.SetEvalCacheSize(DefaultEvalCacheSize)
	}
	if i.vmCache == nil {
		n := i.cacheSize
		if n <= 0 {
			n = DefaultEvalCacheSize
		}
		i.vmCache = lru.New[string, *vmEntry](n)
		i.vmExprCache = lru.New[string, *vmExprEntry](n)
	}
}

// EvalMode reports the active evaluation engine.
func (i *Interp) EvalMode() EvalMode { return i.evalMode }

// cmdCache is one command-dispatch inline cache: the resolution of name
// at cmdEpoch. kind: 0 = unknown name, 1 = command, 2 = procedure.
type cmdCache struct {
	epoch uint64
	name  string
	kind  uint8
	cmd   Command
	proc  *Proc
}

// varCache is one variable inline cache: the resolved *target* slot of a
// name in a specific frame at varEpoch. Misses (frame changed, epoch
// bumped) re-resolve and refill; no negative results are cached, so
// creating variables never needs invalidation.
type varCache struct {
	epoch uint64
	fr    *frame
	v     *variable
}

// specCache memoizes the canonical-builtin guard at cmdEpoch.
type specCache struct {
	epoch uint64
	ok    bool
}

// vmRun is the mutable runtime state of one cached program tree: the
// OpCmd host table and the inline-cache arrays its slots index.
type vmRun struct {
	hosts []*compiledCmd
	cmds  []cmdCache
	vars  []varCache
	specs []specCache
}

func newVMRun(hosts []*compiledCmd, sc vm.SlotCounts) vmRun {
	return vmRun{
		hosts: hosts,
		cmds:  make([]cmdCache, sc.Cmds),
		vars:  make([]varCache, sc.Vars),
		specs: make([]specCache, sc.Specs),
	}
}

// vmEntry is one vm script-cache entry.
type vmEntry struct {
	prog *vm.Program
	run  vmRun
}

// vmExprEntry is one vm expression-cache entry; ast is the classic
// fallback when the expression did not lower.
type vmExprEntry struct {
	prog *vm.ExprProg
	ast  *exprAST
	run  vmRun
}

// canonicalBuiltins maps the specialized command names to the code
// pointers of their canonical implementations; the specialization guard
// compares the live binding against these so rename/proc shadowing
// reverts specialized sites to generic dispatch.
var canonicalBuiltins map[string]uintptr

func init() {
	canonicalBuiltins = map[string]uintptr{
		"set":     reflect.ValueOf(Command(cmdSet)).Pointer(),
		"incr":    reflect.ValueOf(Command(cmdIncr)).Pointer(),
		"expr":    reflect.ValueOf(Command(cmdExpr)).Pointer(),
		"if":      reflect.ValueOf(Command(cmdIf)).Pointer(),
		"while":   reflect.ValueOf(Command(cmdWhile)).Pointer(),
		"foreach": reflect.ValueOf(Command(cmdForeach)).Pointer(),
	}
}

// vmEvalScript is EvalScript's vm-mode body (depth and step accounting
// already done by the caller). A one-entry front cache short-circuits
// the LRU on the common re-evaluate-the-same-text path.
func (i *Interp) vmEvalScript(script string) Result {
	e := i.vmFront
	if e == nil || i.vmFrontKey != script {
		var ok bool
		e, ok = i.vmCache.Get(script)
		if !ok {
			cs, csok := i.evalCache.Get(script)
			if !csok {
				cs = compileScript(script, false)
				i.evalCache.Put(script, cs)
			}
			prog, hosts := lowerRootScript(cs)
			e = &vmEntry{prog: prog, run: newVMRun(hosts, prog.Slots)}
			i.vmCache.Put(script, e)
		}
		i.vmFront, i.vmFrontKey = e, script
	}
	res, _, _, _ := i.runProgram(&e.run, e.prog)
	return res
}

// vmExprValue is exprValue's vm-mode body.
func (i *Interp) vmExprValue(text string) (exprValue, Result) {
	e := i.vmExprFront
	if e == nil || i.vmExprFrontKey != text {
		var ok bool
		e, ok = i.vmExprCache.Get(text)
		if !ok {
			prog, hosts, slots := lowerRootExpr(text)
			e = &vmExprEntry{prog: prog, run: newVMRun(hosts, slots)}
			if !prog.Lowered() {
				e.ast = compileExpr(text)
			}
			i.vmExprCache.Put(text, e)
		}
		i.vmExprFront, i.vmExprFrontKey = e, text
	}
	if e.ast != nil {
		return e.ast.run(i)
	}
	v, res := i.runExprProg(&e.run, e.prog)
	if res.Code != OK {
		return exprValue{}, res
	}
	return exprValueOf(v), Ok("")
}

func exprValueOf(v vm.Value) exprValue {
	switch v.Kind() {
	case vm.KInt:
		return intVal(v.Int())
	case vm.KFloat:
		return floatVal(v.Float())
	default:
		return strVal(v.Text())
	}
}

// --- register stack -----------------------------------------------------

// pushRegs opens a register window of n values on the shared stack and
// returns its base offset. Windows are never zeroed: the compiler
// guarantees every register read is dominated by a write in the same
// command (or expression).
func (i *Interp) pushRegs(n int32) int {
	base := len(i.vmRegs)
	need := base + int(n)
	if need <= cap(i.vmRegs) {
		i.vmRegs = i.vmRegs[:need]
	} else {
		grown := make([]vm.Value, need, need*2+16)
		copy(grown, i.vmRegs)
		i.vmRegs = grown
	}
	return base
}

// runProgram executes a lowered script, mirroring runCompiled's
// contract: the Result plus whether execution ended on a terminating
// ']', plus the native-value channel for the final result (see the
// package comment above).
func (i *Interp) runProgram(r *vmRun, p *vm.Program) (Result, bool, vm.Value, bool) {
	base := i.pushRegs(p.NRegs)
	res, atBracket, num, numOK := i.execProgram(r, p, base)
	i.vmRegs = i.vmRegs[:base]
	return res, atBracket, num, numOK
}

// --- inline-cache runtime -----------------------------------------------

// vmVar resolves name's target slot in the current frame through a cache
// slot; nil when the variable does not exist.
func (i *Interp) vmVar(r *vmRun, slot int32, name string) *variable {
	c := &r.vars[slot]
	fr := i.current()
	if c.epoch == i.varEpoch && c.fr == fr {
		return c.v
	}
	v, ok := fr.vars[name]
	if !ok {
		return nil
	}
	t := v.target()
	c.epoch, c.fr, c.v = i.varEpoch, fr, t
	return t
}

// vmReadVar reads scalar name (GetVar semantics for plain names).
func (i *Interp) vmReadVar(r *vmRun, slot int32, name string) (string, bool) {
	t := i.vmVar(r, slot, name)
	if t == nil || t.isArr {
		return "", false
	}
	return t.value, true
}

// vmReadVarNum reads scalar name as an expression operand, memoizing the
// numeric classification on the variable slot.
func (i *Interp) vmReadVarNum(r *vmRun, slot int32, name string) (vm.Value, bool) {
	t := i.vmVar(r, slot, name)
	if t == nil || t.isArr {
		return vm.Value{}, false
	}
	if t.numState == 0 {
		t.num = vm.ClassifyOperand(t.value)
		t.numState = 1
	}
	return t.num, true
}

// vmWriteVar sets scalar name (SetVar semantics for plain names) and
// returns the stored string. Integer values keep their native form in
// the variable's numeric memo; floats do not (their canonical 12-digit
// rendering is lossy, so the memo must be re-derived from the string).
func (i *Interp) vmWriteVar(r *vmRun, slot int32, name string, val vm.Value) string {
	s := val.Text()
	c := &r.vars[slot]
	fr := i.current()
	t := c.v
	if c.epoch != i.varEpoch || c.fr != fr {
		v, ok := fr.vars[name]
		if !ok {
			v = &variable{}
			fr.vars[name] = v
		}
		t = v.target()
		c.epoch, c.fr, c.v = i.varEpoch, fr, t
	}
	t.isArr = false
	t.value = s
	if val.Kind() == vm.KInt {
		t.num = val
		t.numState = 1
	} else {
		t.numState = 0
	}
	return s
}

// vmDispatch resolves and runs a command through a dispatch cache slot.
func (i *Interp) vmDispatch(r *vmRun, slot int32, name string, words []string) Result {
	c := &r.cmds[slot]
	if c.epoch != i.cmdEpoch || c.name != name {
		c.epoch, c.name = i.cmdEpoch, name
		if cmd, ok := i.commands[name]; ok {
			c.kind, c.cmd, c.proc = 1, cmd, nil
		} else if p, ok := i.procs[name]; ok {
			c.kind, c.cmd, c.proc = 2, nil, p
		} else {
			c.kind, c.cmd, c.proc = 0, nil, nil
		}
	}
	switch c.kind {
	case 1:
		return c.cmd(i, words)
	case 2:
		return i.callProc(name, c.proc, words[1:])
	default:
		return Errf("invalid command name %q", name)
	}
}

// vmSpecOK reports whether name still binds its canonical builtin.
func (i *Interp) vmSpecOK(r *vmRun, slot int32, name string) bool {
	c := &r.specs[slot]
	if c.epoch == i.cmdEpoch {
		return c.ok
	}
	c.epoch = i.cmdEpoch
	c.ok = false
	if cmd, ok := i.commands[name]; ok {
		if want, known := canonicalBuiltins[name]; known {
			c.ok = reflect.ValueOf(cmd).Pointer() == want
		}
	}
	return c.ok
}

// vmSpecFast reports whether a specialized site may take its fast path:
// no observer hooks armed and the canonical builtin still bound.
func (i *Interp) vmSpecFast(r *vmRun, aux *vm.CmdAux) bool {
	if i.Trace != nil || i.DispatchHook != nil {
		return false
	}
	return i.vmSpecOK(r, aux.SpecSlot, aux.Name)
}

// vmEvalBlock runs a body block with EvalScript framing (depth guard,
// script step, depth bump) — the specialized twin of cmdIf/cmdWhile
// calling i.EvalScript(body).
func (i *Interp) vmEvalBlock(r *vmRun, blk *vm.Block) (Result, vm.Value, bool) {
	if blk.Prog == nil {
		return i.EvalScript(blk.Src), vm.Value{}, false
	}
	if i.depth >= i.MaxDepth {
		return Errf("too many nested evaluations (infinite loop?)"), vm.Value{}, false
	}
	if res, ok := i.spendStep(); !ok {
		return res, vm.Value{}, false
	}
	i.depth++
	res, _, num, numOK := i.runProgram(r, blk.Prog)
	i.depth--
	return res, num, numOK
}

// vmExprBool evaluates a condition expression (ExprBool semantics).
func (i *Interp) vmExprBool(r *vmRun, p *vm.ExprProg) (bool, Result) {
	if !p.Lowered() {
		return i.ExprBool(p.Src)
	}
	v, res := i.runExprProg(r, p)
	if res.Code != OK {
		return false, res
	}
	if v.Kind() == vm.KInt {
		return v.Int() != 0, Ok("")
	}
	b, msg := v.Truth()
	if msg != "" {
		return false, Result{Code: Error, Value: msg}
	}
	return b, Ok("")
}

// --- the script machine -------------------------------------------------

// execProgram is the script interpreter loop. The register window is
// re-sliced from the shared stack at each instruction because nested
// evaluation (brackets, bodies, dispatched commands re-entering the vm)
// may grow and reallocate it.
func (i *Interp) execProgram(r *vmRun, p *vm.Program, base int) (Result, bool, vm.Value, bool) {
	last := Ok("")
	var lastNum vm.Value
	lastNumOK := false
	code := p.Code
	for pc := 0; pc < len(code); {
		in := &code[pc]
		regs := i.vmRegs[base:]
		switch in.Op {
		case vm.OpConst:
			regs[in.Dst] = p.Consts[in.A]
			pc++

		case vm.OpVarRead:
			name := p.Names[in.A]
			val, ok := i.vmReadVar(r, in.B, name)
			if !ok {
				// A failed substitution aborts the command with no step
				// charged and no ErrorInfo note, like substCompiledSeg.
				return Errf("can't read %q: no such variable", name), false, vm.Value{}, false
			}
			regs[in.Dst] = vm.StringValue(val)
			pc++

		case vm.OpArrRead:
			name, idx := p.Names[in.A], p.Names[in.B]
			t := i.vmVar(r, in.C, name)
			if t == nil || !t.isArr {
				return Errf("can't read %q: no such element in array", name+"("+idx+")"), false, vm.Value{}, false
			}
			val, ok := t.arr[idx]
			if !ok {
				return Errf("can't read %q: no such element in array", name+"("+idx+")"), false, vm.Value{}, false
			}
			regs[in.Dst] = vm.StringValue(val)
			pc++

		case vm.OpConcat:
			if in.B == 2 {
				regs[in.Dst] = vm.StringValue(regs[in.A].Text() + regs[in.A+1].Text())
			} else {
				var sb strings.Builder
				for k := int32(0); k < in.B; k++ {
					sb.WriteString(regs[in.A+k].Text())
				}
				regs[in.Dst] = vm.StringValue(sb.String())
			}
			pc++

		case vm.OpBracket:
			out, atBracket, num, numOK := i.runProgram(r, p.Blocks[in.A].Prog)
			if out.Code == Return {
				if !atBracket {
					return Errf("missing close-bracket"), false, vm.Value{}, false
				}
			} else if out.Code != OK {
				return out, false, vm.Value{}, false
			}
			regs = i.vmRegs[base:]
			if numOK {
				// out.Value is num's canonical rendering; carry it so a
				// downstream set/concat never re-formats the integer.
				regs[in.Dst] = vm.IntStringValue(num.Int(), out.Value)
			} else {
				regs[in.Dst] = vm.StringValue(out.Value)
			}
			pc++

		case vm.OpInvoke:
			aux := &p.Aux[in.Dst]
			var words []string
			if in.B == 0 {
				words = p.LitWords[aux.LitIdx]
			} else {
				words = make([]string, in.B)
				for k := int32(0); k < in.B; k++ {
					words[k] = regs[in.A+k].Text()
				}
			}
			var res Result
			if i.Trace != nil || i.DispatchHook != nil {
				res = i.EvalWords(words)
			} else if sres, ok := i.spendStep(); !ok {
				res = sres
			} else {
				res = i.vmDispatch(r, aux.CacheSlot, words[0], words)
			}
			if res.Code != OK {
				if res.Code == Error {
					i.noteErrorLine(words)
				}
				return res, aux.BracketOK, vm.Value{}, false
			}
			last, lastNumOK = res, false
			pc++

		case vm.OpCmd:
			// Classic replay of one original command, byte for byte the
			// loop body of runCompiled.
			cmd := r.hosts[in.A]
			words, res := i.substCompiledWords(cmd)
			if res.Code != OK {
				return res, false, vm.Value{}, false
			}
			if cmd.parseErr != nil {
				if _, res := i.substSegs(cmd.partial); res.Code != OK {
					return res, false, vm.Value{}, false
				}
				return *cmd.parseErr, false, vm.Value{}, false
			}
			if cmd.poisoned {
				return Errf("internal: poisoned command survived substitution"), false, vm.Value{}, false
			}
			res = i.EvalWords(words)
			if res.Code != OK {
				if res.Code == Error {
					i.noteErrorLine(words)
				}
				return res, cmd.bracketOK, vm.Value{}, false
			}
			last, lastNumOK = res, false
			pc++

		case vm.OpJump:
			pc = int(in.A)

		case vm.OpRaise:
			rz := &p.Raises[in.A]
			return Result{Code: Code(rz.Code), Value: rz.Msg}, false, vm.Value{}, false

		case vm.OpSpecEnter:
			aux := &p.Aux[in.Dst]
			if !i.vmSpecFast(r, aux) {
				words := p.LitWords[aux.LitIdx]
				res := i.EvalWords(words)
				if res.Code != OK {
					if res.Code == Error {
						i.noteErrorLine(words)
					}
					return res, aux.BracketOK, vm.Value{}, false
				}
				last, lastNumOK = res, false
				pc = int(in.A)
				break
			}
			if res, ok := i.spendStep(); !ok {
				i.noteErrorLine(p.LitWords[aux.LitIdx])
				return res, aux.BracketOK, vm.Value{}, false
			}
			pc++

		case vm.OpTestExpr:
			aux := &p.Aux[in.Dst]
			b, res := i.vmExprBool(r, p.Exprs[in.A])
			if res.Code != OK {
				if res.Code == Error {
					i.noteErrorLine(p.LitWords[aux.LitIdx])
				}
				return res, aux.BracketOK, vm.Value{}, false
			}
			if b {
				pc++
			} else {
				pc = int(in.B)
			}

		case vm.OpIfBody:
			aux := &p.Aux[in.Dst]
			res, num, numOK := i.vmEvalBlock(r, &p.Blocks[in.A])
			if res.Code != OK {
				if res.Code == Error {
					i.noteErrorLine(p.LitWords[aux.LitIdx])
				}
				return res, aux.BracketOK, vm.Value{}, false
			}
			last, lastNum, lastNumOK = res, num, numOK
			pc = int(in.B)

		case vm.OpLoopBody:
			aux := &p.Aux[in.Dst]
			res, _, _ := i.vmEvalBlock(r, &p.Blocks[in.A])
			switch res.Code {
			case OK, Continue:
				pc = int(in.B)
			case Break:
				pc++ // falls through to OpSpecDone
			default:
				if res.Code == Error {
					i.noteErrorLine(p.LitWords[aux.LitIdx])
				}
				return res, aux.BracketOK, vm.Value{}, false
			}

		case vm.OpForeachNext:
			f := &p.Foreach[in.A]
			items := p.Lists[f.List]
			ctr := regs[in.Dst].Int()
			if ctr >= int64(len(items)) {
				pc = int(in.B)
				break
			}
			i.vmWriteVar(r, f.VarSlot, p.Names[f.Name], vm.StringValue(items[ctr]))
			regs[in.Dst] = vm.IntValue(ctr + 1)
			pc++

		case vm.OpSpecDone:
			last, lastNumOK = Ok(""), false
			pc++

		case vm.OpSetVar:
			aux := &p.Aux[in.Dst]
			name := p.Names[in.A]
			if !i.vmSpecFast(r, aux) {
				res := i.vmRunGeneric(p, aux, in, regs)
				if res.Code != OK {
					return res, aux.BracketOK, vm.Value{}, false
				}
				last, lastNumOK = res, false
				pc++
				break
			}
			if res, ok := i.spendStep(); !ok {
				i.noteErrorLine(i.vmSpecWords(p, aux, in, regs))
				return res, aux.BracketOK, vm.Value{}, false
			}
			val := regs[in.B]
			last = Ok(i.vmWriteVar(r, in.C, name, val))
			if val.Kind() == vm.KInt {
				lastNum, lastNumOK = val, true
			} else {
				lastNumOK = false
			}
			pc++

		case vm.OpGetVar:
			aux := &p.Aux[in.Dst]
			name := p.Names[in.A]
			if !i.vmSpecFast(r, aux) {
				res := i.vmRunGeneric(p, aux, in, regs)
				if res.Code != OK {
					return res, aux.BracketOK, vm.Value{}, false
				}
				last, lastNumOK = res, false
				pc++
				break
			}
			if res, ok := i.spendStep(); !ok {
				i.noteErrorLine(p.LitWords[aux.LitIdx])
				return res, aux.BracketOK, vm.Value{}, false
			}
			val, ok := i.vmReadVar(r, in.C, name)
			if !ok {
				res := Errf("can't read %q: no such variable", name)
				i.noteErrorLine(p.LitWords[aux.LitIdx])
				return res, aux.BracketOK, vm.Value{}, false
			}
			last, lastNumOK = Ok(val), false
			pc++

		case vm.OpIncr:
			aux := &p.Aux[in.Dst]
			name := p.Names[in.A]
			if !i.vmSpecFast(r, aux) {
				res := i.vmRunGeneric(p, aux, in, regs)
				if res.Code != OK {
					return res, aux.BracketOK, vm.Value{}, false
				}
				last, lastNumOK = res, false
				pc++
				break
			}
			if res, ok := i.spendStep(); !ok {
				i.noteErrorLine(p.LitWords[aux.LitIdx])
				return res, aux.BracketOK, vm.Value{}, false
			}
			t := i.vmVar(r, in.C, name)
			if t == nil || t.isArr {
				res := Errf("can't read %q: no such variable", name)
				i.noteErrorLine(p.LitWords[aux.LitIdx])
				return res, aux.BracketOK, vm.Value{}, false
			}
			var n int64
			if t.numState == 1 && t.num.Kind() == vm.KInt {
				n = t.num.Int()
			} else {
				pn, err := strconv.ParseInt(strings.TrimSpace(t.value), 0, 64)
				if err != nil {
					res := Errf("expected integer but got %q", t.value)
					i.noteErrorLine(p.LitWords[aux.LitIdx])
					return res, aux.BracketOK, vm.Value{}, false
				}
				n = pn
			}
			delta := int64(1)
			if in.B >= 0 {
				delta = p.Consts[in.B].Int()
			}
			n += delta
			s := strconv.FormatInt(n, 10)
			t.isArr = false
			t.value = s
			t.num = vm.IntValue(n)
			t.numState = 1
			last = Ok(s)
			lastNum, lastNumOK = t.num, true
			pc++

		case vm.OpExprCmd:
			aux := &p.Aux[in.Dst]
			if !i.vmSpecFast(r, aux) {
				res := i.vmRunGeneric(p, aux, in, regs)
				if res.Code != OK {
					return res, aux.BracketOK, vm.Value{}, false
				}
				last, lastNumOK = res, false
				pc++
				break
			}
			if res, ok := i.spendStep(); !ok {
				i.noteErrorLine(p.LitWords[aux.LitIdx])
				return res, aux.BracketOK, vm.Value{}, false
			}
			ep := p.Exprs[in.A]
			if ep.Lowered() {
				v, res := i.runExprProg(r, ep)
				if res.Code != OK {
					if res.Code == Error {
						i.noteErrorLine(p.LitWords[aux.LitIdx])
					}
					return res, aux.BracketOK, vm.Value{}, false
				}
				last = Ok(v.Text())
				if v.Kind() == vm.KInt {
					lastNum, lastNumOK = v, true
				} else {
					lastNumOK = false
				}
			} else {
				s, res := i.ExprString(ep.Src)
				if res.Code != OK {
					if res.Code == Error {
						i.noteErrorLine(p.LitWords[aux.LitIdx])
					}
					return res, aux.BracketOK, vm.Value{}, false
				}
				last, lastNumOK = Ok(s), false
			}
			pc++

		default:
			return Errf("internal: unknown vm opcode %d", in.Op), false, vm.Value{}, false
		}
	}
	return last, p.EndAtBracket, lastNum, lastNumOK
}

// vmSpecWords rebuilds the substituted word list of a simple specialized
// command (for generic fallback and ErrorInfo notes).
func (i *Interp) vmSpecWords(p *vm.Program, aux *vm.CmdAux, in *vm.Instr, regs []vm.Value) []string {
	if aux.LitIdx >= 0 {
		return p.LitWords[aux.LitIdx]
	}
	// Only OpSetVar sites can be non-literal (computed value word).
	return []string{aux.Name, p.Names[in.A], regs[in.B].Text()}
}

// vmRunGeneric dispatches a specialized site through the classic
// EvalWords path (hooks armed, or the builtin was rebound), applying the
// standard command tail (ErrorInfo note on error).
func (i *Interp) vmRunGeneric(p *vm.Program, aux *vm.CmdAux, in *vm.Instr, regs []vm.Value) Result {
	words := i.vmSpecWords(p, aux, in, regs)
	res := i.EvalWords(words)
	if res.Code == Error {
		i.noteErrorLine(words)
	}
	return res
}

// --- the expression machine ---------------------------------------------

// exprCtl is one lazy-operator control frame: the enclosing takenness
// and the operator's own test flag (lhs truth / ternary condition).
type exprCtl struct {
	taken bool
	flag  bool
}

// runExprProg executes a lowered expression.
func (i *Interp) runExprProg(r *vmRun, p *vm.ExprProg) (vm.Value, Result) {
	base := i.pushRegs(p.NRegs)
	v, res := i.execExpr(r, p, base)
	i.vmRegs = i.vmRegs[:base]
	return v, res
}

// execExpr is the expression interpreter loop. Only EBracket can grow
// the register stack, so the window is hoisted and re-sliced after it.
func (i *Interp) execExpr(r *vmRun, p *vm.ExprProg, base int) (vm.Value, Result) {
	var ctlArr [8]exprCtl
	ctl := ctlArr[:0]
	taken := true
	code := p.Code
	regs := i.vmRegs[base:]
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		switch in.Op {
		case vm.EConst:
			regs[in.Dst] = p.Consts[in.A]

		case vm.EVar:
			if !taken {
				regs[in.Dst] = vm.IntValue(0)
				break
			}
			if c := &r.vars[in.B]; c.epoch == i.varEpoch && c.fr == i.current() && !c.v.isArr && c.v.numState == 1 {
				regs[in.Dst] = c.v.num
				break
			}
			name := p.Names[in.A]
			v, ok := i.vmReadVarNum(r, in.B, name)
			if !ok {
				return vm.Value{}, Errf("can't read %q: no such variable", name)
			}
			regs[in.Dst] = v

		case vm.EBracket:
			if !taken {
				// The classic evaluator skips the bracket lexically on
				// untaken sides; reproduce the skip's verdict.
				if in.B == 0 {
					return vm.Value{}, Errf("missing close-bracket")
				}
				regs[in.Dst] = vm.IntValue(0)
				break
			}
			out, atBracket, num, numOK := i.runProgram(r, p.Blocks[in.A].Prog)
			if out.Code == Return {
				if !atBracket {
					return vm.Value{}, Errf("missing close-bracket")
				}
			} else if out.Code != OK {
				return vm.Value{}, out
			}
			regs = i.vmRegs[base:]
			if numOK {
				regs[in.Dst] = num
			} else {
				regs[in.Dst] = vm.ClassifyOperand(out.Value)
			}

		case vm.EUnary:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			out, msg := vm.ApplyUnary(byte(in.B), regs[in.A])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out

		// Each binary operator gets its own case so dispatch is a single
		// jump-table hop with the int⊗int path inline; the mixed/string
		// path falls through to ApplyBinary. Untaken binaries pass the
		// lhs through, as the walker does. Int semantics (flooring,
		// zero checks, shift bounds, error strings) mirror applyArith,
		// applyIntOp and applyCompare exactly; the differential fuzzer
		// holds the two in lockstep.
		case vm.EAdd:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.IntValue(x + y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.ESub:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.IntValue(x - y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EMul:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.IntValue(x * y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EDiv:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				if y == 0 {
					return vm.Value{}, Result{Code: Error, Value: "divide by zero"}
				}
				q := x / y
				if (x%y != 0) && ((x < 0) != (y < 0)) {
					q--
				}
				regs[in.Dst] = vm.IntValue(q)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EMod:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				if y == 0 {
					return vm.Value{}, Result{Code: Error, Value: "divide by zero"}
				}
				rem := x % y
				if rem != 0 && ((x < 0) != (y < 0)) {
					rem += y
				}
				regs[in.Dst] = vm.IntValue(rem)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EBitOr:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.IntValue(x | y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EBitXor:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.IntValue(x ^ y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EBitAnd:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.IntValue(x & y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EShl:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				if y < 0 || y > 63 {
					return vm.Value{}, Result{Code: Error, Value: "invalid shift count " + strconv.FormatInt(y, 10)}
				}
				regs[in.Dst] = vm.IntValue(x << uint(y))
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EShr:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				if y < 0 || y > 63 {
					return vm.Value{}, Result{Code: Error, Value: "invalid shift count " + strconv.FormatInt(y, 10)}
				}
				regs[in.Dst] = vm.IntValue(x >> uint(y))
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EEq:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.BoolValue(x == y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.ENe:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.BoolValue(x != y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.ELt:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.BoolValue(x < y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EGt:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.BoolValue(x > y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.ELe:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.BoolValue(x <= y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out
		case vm.EGe:
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if a, b := regs[in.A], regs[in.B]; a.Kind() == vm.KInt && b.Kind() == vm.KInt {
				x, y := a.Int(), b.Int()
				regs[in.Dst] = vm.BoolValue(x >= y)
				break
			}
			out, msg := vm.ApplyBinary(vm.BinOpOf(in.Op), regs[in.A], regs[in.B])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out

		case vm.EAndTest:
			lt := true
			if taken {
				if av := regs[in.A]; av.Kind() == vm.KInt {
					lt = av.Int() != 0
				} else {
					b, msg := av.Truth()
					if msg != "" {
						return vm.Value{}, Result{Code: Error, Value: msg}
					}
					lt = b
				}
			}
			ctl = append(ctl, exprCtl{taken: taken, flag: lt})
			taken = taken && lt

		case vm.EAndEnd:
			fr := ctl[len(ctl)-1]
			ctl = ctl[:len(ctl)-1]
			taken = fr.taken
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if !fr.flag {
				regs[in.Dst] = vm.BoolValue(false)
				break
			}
			if av := regs[in.B]; av.Kind() == vm.KInt {
				regs[in.Dst] = vm.BoolValue(av.Int() != 0)
			} else {
				b, msg := av.Truth()
				if msg != "" {
					return vm.Value{}, Result{Code: Error, Value: msg}
				}
				regs[in.Dst] = vm.BoolValue(b)
			}

		case vm.EOrTest:
			lf := false
			if taken {
				if av := regs[in.A]; av.Kind() == vm.KInt {
					lf = av.Int() != 0
				} else {
					b, msg := av.Truth()
					if msg != "" {
						return vm.Value{}, Result{Code: Error, Value: msg}
					}
					lf = b
				}
			}
			ctl = append(ctl, exprCtl{taken: taken, flag: lf})
			taken = taken && !lf

		case vm.EOrEnd:
			fr := ctl[len(ctl)-1]
			ctl = ctl[:len(ctl)-1]
			taken = fr.taken
			if !taken {
				regs[in.Dst] = regs[in.A]
				break
			}
			if fr.flag {
				regs[in.Dst] = vm.BoolValue(true)
				break
			}
			if av := regs[in.B]; av.Kind() == vm.KInt {
				regs[in.Dst] = vm.BoolValue(av.Int() != 0)
			} else {
				b, msg := av.Truth()
				if msg != "" {
					return vm.Value{}, Result{Code: Error, Value: msg}
				}
				regs[in.Dst] = vm.BoolValue(b)
			}

		case vm.ETernTest:
			take := false
			if taken {
				if av := regs[in.A]; av.Kind() == vm.KInt {
					take = av.Int() != 0
				} else {
					b, msg := av.Truth()
					if msg != "" {
						return vm.Value{}, Result{Code: Error, Value: msg}
					}
					take = b
				}
			}
			ctl = append(ctl, exprCtl{taken: taken, flag: take})
			taken = taken && take

		case vm.ETernElse:
			fr := &ctl[len(ctl)-1]
			taken = fr.taken && !fr.flag

		case vm.ETernEnd:
			fr := ctl[len(ctl)-1]
			ctl = ctl[:len(ctl)-1]
			taken = fr.taken
			if !taken {
				regs[in.Dst] = vm.IntValue(0)
				break
			}
			if fr.flag {
				regs[in.Dst] = regs[in.A]
			} else {
				regs[in.Dst] = regs[in.B]
			}

		case vm.EFunc:
			if !taken {
				regs[in.Dst] = vm.IntValue(0)
				break
			}
			out, msg := vm.ApplyMathFunc(p.Funcs[in.B], regs[in.A])
			if msg != "" {
				return vm.Value{}, Result{Code: Error, Value: msg}
			}
			regs[in.Dst] = out

		case vm.EEnd:
			return regs[in.A], Ok("")
		}
	}
	return vm.Value{}, Errf("internal: expression program fell off the end")
}
