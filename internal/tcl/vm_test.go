package tcl

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/tcl/vm"
)

// vmEquivScripts is the cross-mode conformance table: every script runs
// under classic, cached, and vm evaluation and must produce identical
// results, error text, ErrorInfo traces, output, and step counts. The
// list deliberately covers every specialized opcode (set/incr/expr/if/
// while/foreach), the generic dispatch path, substitution errors, and
// the control-flow edges (break/continue/return/error).
var vmEquivScripts = []string{
	// Specialized builtins and the native-value channel.
	`set a 1`,
	`set a 1; set b $a; set b`,
	`set a 0x10; set b [set a]; set b`,
	`set total 0; foreach n {1 2 3 4 5 6 7 8} { if {$n % 2 == 0} { set total [expr {$total + $n * 3}] } else { set log "skip $n" } }; set total`,
	`set x 5; while {$x > 0} { incr x -1 }; set x`,
	`set v 7; incr v; incr v 3; incr v -11; set v`,
	`set v notanum; incr v`,
	`incr novar`,
	`if {1 < 2} then {set r yes} else {set r no}`,
	`if {0} {set r a} elseif {1} {set r b} else {set r c}; set r`,
	`while {1} { break }`,
	`set s 0; foreach {a b} {1 2 3 4} { incr s $a; incr s $b }; set s`,
	`foreach v {a b} { continue; set never 1 }`,
	// Expressions: lazy operators, ternaries, floats, strings, functions.
	`expr {3.5 * 2}`,
	`expr {1 ? "a" : [set q]}`,
	`expr {0 && [undefined]}`,
	`expr {1 || [undefined]}`,
	`expr {"abc" < "abd"}`,
	`expr {abs(-4) + round(2.6)}`,
	`expr {(5 / -2) + (-5 % 3)}`,
	`expr {1 << 4 | 3 & 6 ^ 2}`,
	`expr {1 << 99}`,
	`expr {10 % 0}`,
	`expr {"x" + 1}`,
	`set x 21; set y 3; expr {($x * 2 + 100 / $y) > 50 && $x % 7 <= 3 || !($y == 3)}`,
	// Arrays, lists, procs, frames.
	`set a(x) 1; set a(y) 2; expr {$a(x) + $a(y)}`,
	`proc f {a b} { expr {$a + $b} }; f 3 4`,
	`proc g {} { upvar 1 v loc; set loc 42 }; set v 0; g; set v`,
	`proc h {} { global gv; incr gv }; set gv 9; h; set gv`,
	`proc fib {n} { if {$n < 2} { return $n }; expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]} }; fib 9`,
	`set l {}; foreach v {a b c} { lappend l $v-$v }; set l`,
	`set s hello; string length $s`,
	// Errors, traces, and the substitution edges.
	`catch {expr {1/0}} msg; set msg`,
	`catch {error boom} msg; set msg`,
	`unknowncmd foo`,
	`set`,
	`set x [`,
	`expr {[}`,
	`puts "a $missing b"`,
	// Command-table churn: inline caches must revalidate.
	`rename set myset; myset z 9; myset z`,
	`proc set2 {n v} { uplevel 1 [list set $n $v] }; set2 q 5; set q`,
	`proc w {} {return inner}; w; rename w ""; w`,
	// Interpolated (non-literal) words through the specialized sites.
	`set n total; set $n 3; incr $n 4; set total`,
	`set i 2; set "v$i" x; set v2`,
}

// runEquiv evaluates script in the given mode on a fresh interpreter and
// reports everything the differential check compares. When warm is set
// the script runs twice (state reset in between where possible is not
// attempted — warm runs compare warm-vs-warm across modes instead).
func runEquiv(mode EvalMode, script string, warm bool) (res Result, info string, steps int64, out string) {
	var sb strings.Builder
	i := New()
	i.SetEvalMode(mode)
	i.Stdout = &sb
	i.Stderr = &sb
	i.StepLimit = 100000
	if warm {
		i.EvalScript(script)
		i.ErrorInfo = ""
	}
	res = i.EvalScript(script)
	return res, i.ErrorInfo, i.Steps(), sb.String()
}

func TestVMEquivalence(t *testing.T) {
	for _, script := range vmEquivScripts {
		for _, warm := range []bool{false, true} {
			rc, infoC, stepsC, outC := runEquiv(EvalClassic, script, warm)
			for _, mode := range []EvalMode{EvalCached, EvalVM} {
				rm, infoM, stepsM, outM := runEquiv(mode, script, warm)
				label := fmt.Sprintf("%s warm=%v script=%q", mode, warm, script)
				if rc != rm {
					t.Errorf("%s: result classic=%+v got=%+v", label, rc, rm)
				}
				if infoC != infoM {
					t.Errorf("%s: errorinfo classic=%q got=%q", label, infoC, infoM)
				}
				if stepsC != stepsM {
					t.Errorf("%s: steps classic=%d got=%d", label, stepsC, stepsM)
				}
				if outC != outM {
					t.Errorf("%s: output classic=%q got=%q", label, outC, outM)
				}
			}
		}
	}
}

// TestVMStepLimitParity pins the satellite requirement that step counts
// are variant-neutral: a tight StepLimit must trip at the same step with
// the same error text in all three modes.
func TestVMStepLimitParity(t *testing.T) {
	const script = `set n 0; while {1} { incr n }`
	var ref Result
	var refSteps int64
	for k, mode := range []EvalMode{EvalClassic, EvalCached, EvalVM} {
		i := New()
		i.SetEvalMode(mode)
		i.StepLimit = 500
		res := i.EvalScript(script)
		if res.Code != Error || !strings.Contains(res.Value, "step limit exceeded") {
			t.Fatalf("%s: expected step-limit error, got %+v", mode, res)
		}
		if k == 0 {
			ref, refSteps = res, i.Steps()
			continue
		}
		if res != ref {
			t.Errorf("%s: result %+v, classic %+v", mode, res, ref)
		}
		if i.Steps() != refSteps {
			t.Errorf("%s: steps %d, classic %d", mode, i.Steps(), refSteps)
		}
	}
}

// TestVMHookParity checks that Trace and DispatchHook observe the same
// command sequence under vm evaluation: arming a hook drops the
// specialized sites back to the generic dispatch path, so the hook's view
// is identical to the classic evaluator's.
func TestVMHookParity(t *testing.T) {
	const script = `set a 1; incr a; if {$a > 1} { set b [expr {$a * 2}] }; foreach x {1 2} { set c $x }`
	seq := func(mode EvalMode) (trace, hook []string) {
		i := New()
		i.SetEvalMode(mode)
		i.Trace = func(depth int, words []string) {
			trace = append(trace, fmt.Sprintf("%d:%s", depth, strings.Join(words, " ")))
		}
		i.DispatchHook = func(name string, depth int, d time.Duration) {
			hook = append(hook, fmt.Sprintf("%d:%s", depth, name))
		}
		if res := i.EvalScript(script); res.Code != OK {
			t.Fatalf("%s: %+v", mode, res)
		}
		return trace, hook
	}
	traceC, hookC := seq(EvalClassic)
	for _, mode := range []EvalMode{EvalCached, EvalVM} {
		traceM, hookM := seq(mode)
		if strings.Join(traceC, "\n") != strings.Join(traceM, "\n") {
			t.Errorf("%s trace diverged:\nclassic:\n%s\ngot:\n%s", mode, strings.Join(traceC, "\n"), strings.Join(traceM, "\n"))
		}
		if strings.Join(hookC, "\n") != strings.Join(hookM, "\n") {
			t.Errorf("%s dispatch hook diverged:\nclassic:\n%s\ngot:\n%s", mode, strings.Join(hookC, "\n"), strings.Join(hookM, "\n"))
		}
	}
}

// TestVMHookMidStream arms the hooks after the vm has already compiled
// and specialized the script, which must flip the specialized sites back
// to the generic (observable) path without recompilation.
func TestVMHookMidStream(t *testing.T) {
	const script = `set a 1; incr a 2; set a`
	i := New()
	i.SetEvalMode(EvalVM)
	if res := i.EvalScript(script); res.Code != OK || res.Value != "3" {
		t.Fatalf("cold run: %+v", res)
	}
	var hook []string
	i.DispatchHook = func(name string, depth int, d time.Duration) { hook = append(hook, name) }
	if res := i.EvalScript(script); res.Code != OK || res.Value != "3" {
		t.Fatalf("hooked run: %+v", res)
	}
	want := "set,incr,set"
	if got := strings.Join(hook, ","); got != want {
		t.Errorf("dispatch hook saw %q, want %q", got, want)
	}
}

func TestEvalModeRoundTrip(t *testing.T) {
	for _, m := range []EvalMode{EvalClassic, EvalCached, EvalVM} {
		got, ok := ParseEvalMode(m.String())
		if !ok || got != m {
			t.Errorf("ParseEvalMode(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := ParseEvalMode("turbo"); ok {
		t.Errorf("ParseEvalMode accepted unknown mode")
	}
	i := New()
	if i.EvalMode() != EvalCached {
		t.Errorf("default mode = %v, want cached", i.EvalMode())
	}
	i.SetEvalMode(EvalVM)
	if res := i.EvalScript(`set a 5; expr {$a * 2}`); res.Value != "10" {
		t.Fatalf("vm eval: %+v", res)
	}
	// Switching modes mid-stream must keep interpreter state.
	i.SetEvalMode(EvalClassic)
	if res := i.EvalScript(`incr a`); res.Value != "6" {
		t.Fatalf("classic after vm: %+v", res)
	}
	i.SetEvalMode(EvalVM)
	if res := i.EvalScript(`incr a`); res.Value != "7" {
		t.Fatalf("vm after classic: %+v", res)
	}
}

// TestVMMutationDetected corrupts a lowered program's constant pool and
// checks the differential comparison actually reports the divergence —
// the proof that the equivalence harness has teeth.
func TestVMMutationDetected(t *testing.T) {
	const script = `set a 40; expr {$a + 2}`
	i := New()
	i.SetEvalMode(EvalVM)
	if res := i.EvalScript(script); res.Value != "42" {
		t.Fatalf("cold run: %+v", res)
	}
	// The front cache now holds the lowered program; corrupt the literal
	// "40" in its constant pool.
	if i.vmFront == nil || i.vmFrontKey != script {
		t.Fatalf("front cache not primed")
	}
	mutated := false
	for bi := range i.vmFront.prog.Consts {
		if i.vmFront.prog.Consts[bi].Text() == "40" {
			i.vmFront.prog.Consts[bi] = vm.StringValue("41")
			mutated = true
		}
	}
	if !mutated {
		t.Fatalf("constant pool holds no literal 40: %v", i.vmFront.prog.Consts)
	}
	ref := New()
	ref.SetEvalMode(EvalClassic)
	rc := ref.EvalScript(script)
	rv := i.EvalScript(script)
	if rc == rv {
		t.Fatalf("mutation was not detected: classic=%+v vm=%+v", rc, rv)
	}
}
