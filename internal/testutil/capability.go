package testutil

import (
	"os"
	"os/exec"
	"testing"
)

// RequirePty skips t on hosts that cannot allocate pseudo-terminals (no
// /dev/ptmx — minimal containers): pty-path tests must skip there, not
// fail, because capability absence is an environment fact, not a
// regression.
func RequirePty(t *testing.T) {
	t.Helper()
	if _, err := os.Stat("/dev/ptmx"); err != nil {
		t.Skipf("pseudo-terminals unavailable: %v", err)
	}
}

// RequireCmd skips t when the named binary is not on PATH; transport
// legs that fork a real child gate on it.
func RequireCmd(t *testing.T, name string) {
	t.Helper()
	if _, err := exec.LookPath(name); err != nil {
		t.Skipf("%s unavailable: %v", name, err)
	}
}
