// Package testutil holds small helpers shared by tests across packages.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and returns a closer that fails
// t if, after grace, the count has not settled back to within slack of
// the snapshot. Slack absorbs runtime helpers and program goroutines
// still unwinding; the retry loop gives them time. Use as:
//
//	defer testutil.LeakCheck(t, 10, 5*time.Second)()
func LeakCheck(t *testing.T, slack int, grace time.Duration) func() {
	t.Helper()
	runtime.GC()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(grace)
		for time.Now().Before(deadline) {
			runtime.GC()
			if runtime.NumGoroutine() <= before+slack {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutine leak: before=%d after=%d (slack %d)",
			before, runtime.NumGoroutine(), slack)
	}
}
