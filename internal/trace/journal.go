// Journal: the durable arm of the flight recorder. The ring answers "what
// just happened" with bounded memory; the journal answers "what happened,
// exactly, from the start" — an append-only JSONL stream carrying full
// payloads, which is what deterministic replay (internal/replay) and
// conformance divergence artifacts need. A journal is attached to a
// Recorder with SetJournal; every recorded event then becomes one line.
package trace

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Journal is an append-only JSONL event sink with optional segment
// rotation. Two backings:
//
//   - writer-backed (NewJournal): every line goes to one sliceWriter-style
//     in-memory buffer; Bytes returns the whole recording. Tests and the
//     conformance harness use this.
//   - file-backed (NewFileJournal): lines append to numbered segment files
//     under a directory, rotating when a segment passes maxSegBytes, so a
//     long soak journals in bounded-size chunks a collector can ship or
//     prune oldest-first.
//
// Appends are serialized by the owning Recorder's lock (journal order is
// seq order); the Journal's own mutex guards Close and direct use.
type Journal struct {
	mu  sync.Mutex
	err error // sticky: first append/rotate failure

	// writer-backed
	buf *sliceWriter

	// file-backed. Lines go through a buffered writer — one flush per
	// buffer-full instead of one write syscall per event, which is what
	// keeps the journal arm inside E20's 10% soak-overhead bar. The
	// buffer is flushed at rotation, Close, and Flush; a crash can lose
	// at most the buffered tail, which ParseJSONL surfaces as a
	// positioned truncation with the good prefix intact.
	dir         string
	prefix      string
	maxSegBytes int64
	cur         *os.File
	w           *bufio.Writer
	curBytes    int64
	segIndex    int
	segments    []string

	// scratch is the reusable line-encoding buffer for appendEvent; it
	// lives under j.mu so the hot path allocates nothing steady-state.
	scratch []byte

	lines int64
}

// NewJournal builds an in-memory journal.
func NewJournal() *Journal {
	return &Journal{buf: &sliceWriter{}}
}

// NewFileJournal builds a file-backed journal writing segment files named
// prefix-NNNN.jsonl under dir, rotating once a segment exceeds maxSegBytes
// (<=0 means a single unbounded segment). The first segment is created
// eagerly so an empty journal is still a visible artifact.
func NewFileJournal(dir, prefix string, maxSegBytes int64) (*Journal, error) {
	j := &Journal{dir: dir, prefix: prefix, maxSegBytes: maxSegBytes}
	if err := j.rotateLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Journal) segPath(i int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s-%04d.jsonl", j.prefix, i))
}

// rotateLocked flushes and closes the current segment and opens the next.
func (j *Journal) rotateLocked() error {
	if j.cur != nil {
		if err := j.w.Flush(); err != nil && j.err == nil {
			j.err = err
		}
		if err := j.cur.Close(); err != nil && j.err == nil {
			j.err = err
		}
	}
	j.segIndex++
	f, err := os.OpenFile(j.segPath(j.segIndex),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		j.err = err
		j.cur = nil
		j.w = nil
		return err
	}
	j.cur = f
	if j.w == nil {
		j.w = bufio.NewWriterSize(f, 64<<10)
	} else {
		j.w.Reset(f)
	}
	j.curBytes = 0
	j.segments = append(j.segments, f.Name())
	return nil
}

// appendEvent marshals one event (with its full payload) and appends the
// line. Called by Recorder.record under the recorder lock. This is the
// journal hot path: it renders into a reusable scratch buffer with an
// append-style encoder instead of reflective json.Marshal, so a journaled
// soak costs allocation-free line rendering plus a buffered memcpy. The
// output is not byte-identical to the canonical MarshalJSONL form (no
// HTML escaping) but parses back to the identical events, which is the
// property replay needs; ParseJSONL∘MarshalJSONL re-canonicalizes.
func (j *Journal) appendEvent(ev *Event, data []byte) {
	if j == nil {
		return
	}
	e := toJSON(ev)
	e.Data = data
	j.mu.Lock()
	defer j.mu.Unlock()
	j.scratch = appendEventJSONL(j.scratch[:0], &e)
	j.appendLocked(j.scratch)
}

// Append writes pre-rendered JSONL bytes (one or more complete lines).
func (j *Journal) Append(line []byte) {
	if j == nil || len(line) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(line)
}

func (j *Journal) appendLocked(line []byte) {
	if j.err != nil {
		return
	}
	j.lines++
	if j.buf != nil {
		j.buf.Write(line)
		return
	}
	if j.cur == nil {
		return
	}
	if j.maxSegBytes > 0 && j.curBytes > 0 && j.curBytes+int64(len(line)) > j.maxSegBytes {
		if err := j.rotateLocked(); err != nil {
			return
		}
	}
	n, err := j.w.Write(line)
	j.curBytes += int64(n)
	if err != nil {
		j.err = err
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. s must be valid
// UTF-8 (toJSON sanitizes previews); multi-byte runes pass through raw,
// which is legal JSON and what keeps this a single byte-scan.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c >= 0x20:
			dst = append(dst, c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c == '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		}
	}
	return append(dst, '"')
}

// appendEventJSONL renders one event as a JSONL line, schema-identical to
// json.Marshal of EventJSON (same field names, same omitempty behaviour,
// std base64 for data) without reflection or per-line allocation.
func appendEventJSONL(dst []byte, e *EventJSON) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"t_ns":`...)
	dst = strconv.AppendInt(dst, e.TNs, 10)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, e.Kind)
	dst = append(dst, `,"sid":`...)
	dst = strconv.AppendInt(dst, int64(e.SID), 10)
	if e.A != 0 {
		dst = append(dst, `,"a":`...)
		dst = strconv.AppendInt(dst, e.A, 10)
	}
	if e.B != 0 {
		dst = append(dst, `,"b":`...)
		dst = strconv.AppendInt(dst, e.B, 10)
	}
	if e.OK {
		dst = append(dst, `,"ok":true`...)
	}
	if e.Text != "" {
		dst = append(dst, `,"text":`...)
		dst = appendJSONString(dst, e.Text)
	}
	if e.Aux != "" {
		dst = append(dst, `,"aux":`...)
		dst = appendJSONString(dst, e.Aux)
	}
	if len(e.Data) > 0 {
		dst = append(dst, `,"data":"`...)
		off := len(dst)
		n := base64.StdEncoding.EncodedLen(len(e.Data))
		for cap(dst) < off+n {
			dst = append(dst[:cap(dst)], 0)
		}
		dst = dst[:off+n]
		base64.StdEncoding.Encode(dst[off:], e.Data)
		dst = append(dst, '"')
	}
	return append(dst, '}', '\n')
}

// Flush forces buffered lines of a file-backed journal to the segment
// file — the durability point callers take before handing a live
// journal's segments to a reader.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w != nil {
		if err := j.w.Flush(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}

// Bytes returns the full recording of a writer-backed journal (nil for
// file-backed; use ReadAll there).
func (j *Journal) Bytes() []byte {
	if j == nil || j.buf == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]byte, len(j.buf.b))
	copy(out, j.buf.b)
	return out
}

// Segments returns the file paths written so far, oldest first.
func (j *Journal) Segments() []string {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.segments...)
}

// Lines returns how many events have been appended.
func (j *Journal) Lines() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lines
}

// Err returns the sticky write error, if any. A journal that hit an error
// stops appending; callers gate on this before trusting the artifact.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the current segment. Writer-backed journals
// keep their bytes readable after Close.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cur != nil {
		if err := j.w.Flush(); err != nil && j.err == nil {
			j.err = err
		}
		if err := j.cur.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.cur = nil
		j.w = nil
	}
	return j.err
}

// ReadAll concatenates a journal's segments back into one JSONL stream —
// what the replay engine parses. For writer-backed journals it is Bytes.
// It also works on a Journal recovered by ReadJournalDir.
func (j *Journal) ReadAll() ([]byte, error) {
	if j == nil {
		return nil, nil
	}
	if j.buf != nil {
		return j.Bytes(), nil
	}
	if err := j.Flush(); err != nil {
		return nil, err
	}
	var out []byte
	for _, p := range j.Segments() {
		b, err := os.ReadFile(p)
		if err != nil {
			return out, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// ReadJournalDir reassembles the JSONL stream from the segment files a
// file-backed journal left under dir (crash recovery: the writing process
// is gone, the segments survive).
func ReadJournalDir(dir, prefix string) ([]byte, error) {
	paths, err := filepath.Glob(filepath.Join(dir, prefix+"-*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []byte
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return out, err
		}
		out = append(out, b...)
	}
	return out, nil
}
