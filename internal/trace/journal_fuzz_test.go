package trace_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/load"
	"repro/internal/trace"
)

// seedJournal records a representative spread of event kinds (including
// payloads that are not valid UTF-8) through a real Recorder+Journal, so
// the fuzz corpus starts from bytes the production writer actually emits.
func seedJournal() []byte {
	r := trace.New(64)
	j := trace.NewJournal()
	r.SetJournal(j)
	r.SetRecording(true)
	r.Record(trace.KindSpawn, 1, 0, 0, true, "echo", "virtual")
	r.RecordBytes(trace.KindRead, 1, 12, 0, false, []byte("login: \xff\xfe"), nil)
	r.RecordBytes(trace.KindWrite, 1, 6, 0, false, []byte("guest\n"), nil)
	r.RecordData(trace.KindExpect, 1, 2, int64(30e9), false, "", "", []byte(`[{"k":0,"p":"*login*"}]`))
	r.RecordAttempt(1, 0, 12, true, "*login*", []byte("login: "))
	r.Record(trace.KindMatch, 1, 0, 12, true, "login: ", "")
	r.Record(trace.KindTimeout, 1, 1, int64(2e6), false, "", "")
	r.Record(trace.KindEOF, 1, 0, 0, false, "", "")
	r.Record(trace.KindConfig, 1, 2000, 0, false, "match_max", "")
	return j.Bytes()
}

// soakJournal runs a miniature workbench soak with journal-armed shard
// recorders and returns the concatenated journals — real soak bytes, the
// corpus the satellite task asks for.
func soakJournal() []byte {
	journals := make([]*trace.Journal, 2)
	_, err := load.Run(load.Config{
		Sessions:  8,
		Dialogues: 2,
		Shards:    2,
		Seed:      7,
		Rec: func(i int) *trace.Recorder {
			r := trace.New(1024)
			journals[i] = trace.NewJournal()
			r.SetJournal(journals[i])
			r.SetRecording(true)
			return r
		},
	})
	if err != nil {
		return nil
	}
	var out []byte
	for _, j := range journals {
		out = append(out, j.Bytes()...)
	}
	return out
}

// FuzzJournalRoundTrip is the journal schema's durability property under
// arbitrary bytes: whatever ParseJSONL accepts must reach the canonical
// fixpoint (MarshalJSONL∘ParseJSONL stabilizes after one round), and
// whatever it rejects must be rejected with a positioned *ParseError —
// never a silent partial absorb. The good prefix returned alongside an
// error must itself round-trip, so a truncated or garbage-tailed journal
// replays exactly as far as it was good and reports where it stopped.
func FuzzJournalRoundTrip(f *testing.F) {
	real := seedJournal()
	f.Add(real)
	if sj := soakJournal(); len(sj) > 0 {
		f.Add(sj)
		// A mid-line truncation of real soak bytes: the classic crash tail.
		f.Add(sj[:len(sj)-len(sj)/3])
	}
	f.Add([]byte{})
	f.Add(real[:len(real)-5])                                                                          // truncated mid-line
	f.Add(append(append([]byte{}, real...), []byte("garbage\n")...))                                   // garbage tail
	f.Add([]byte(`{"seq":1,"kind":"warp","sid":1}` + "\n"))                                            // unknown kind
	f.Add([]byte(`{"seq":2,"kind":"read","sid":1}` + "\n" + `{"seq":2,"kind":"read","sid":1}` + "\n")) // seq stall

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := trace.ParseJSONL(data)
		if err != nil {
			var pe *trace.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("parse error is %T, not *trace.ParseError: %v", err, err)
			}
			if pe.Line <= 0 || pe.Offset < 0 || pe.Offset > len(data) {
				t.Fatalf("parse error position out of bounds: line %d, byte %d of %d", pe.Line, pe.Offset, len(data))
			}
		}
		// The accepted events (all of them on success, the good prefix on
		// error) must reach the canonical fixpoint.
		canon := trace.MarshalJSONL(events)
		again, err2 := trace.ParseJSONL(canon)
		if err2 != nil {
			t.Fatalf("canonical form does not reparse: %v", err2)
		}
		if len(again) != len(events) {
			t.Fatalf("canonical reparse kept %d of %d events", len(again), len(events))
		}
		if !bytes.Equal(trace.MarshalJSONL(again), canon) {
			t.Fatal("MarshalJSONL∘ParseJSONL is not a fixpoint on its own output")
		}
	})
}

// TestJournalGarbageTailPositioned pins the exact failure surface the
// fuzz target explores: a real journal with a truncated or garbage tail
// parses its good prefix and reports the first bad line by number and
// byte offset.
func TestJournalGarbageTailPositioned(t *testing.T) {
	good := seedJournal()
	wantEvents, err := trace.ParseJSONL(good)
	if err != nil {
		t.Fatalf("seed journal does not parse: %v", err)
	}

	for _, tc := range []struct {
		name     string
		data     []byte
		wantLine int
	}{
		// Cutting 4 bytes corrupts the final line in place: the error names
		// it. Appending garbage leaves every good line intact and the error
		// names the first extra line.
		{"truncated", good[:len(good)-4], len(wantEvents)},
		{"garbage-tail", append(append([]byte{}, good...), []byte("{not json}\n")...), len(wantEvents) + 1},
		{"binary-tail", append(append([]byte{}, good...), 0x00, 0x01, 0x02, '\n'), len(wantEvents) + 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			events, err := trace.ParseJSONL(tc.data)
			if err == nil {
				t.Fatal("corrupt journal parsed clean")
			}
			var pe *trace.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *trace.ParseError", err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("error at line %d, want %d (first bad line)", pe.Line, tc.wantLine)
			}
			if pe.Offset <= 0 || pe.Offset > len(tc.data) {
				t.Errorf("error offset %d out of range (0, %d]", pe.Offset, len(tc.data))
			}
			if len(events) >= len(wantEvents)+1 {
				t.Errorf("parser absorbed the corrupt tail: %d events", len(events))
			}
		})
	}
}
