package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// A journaled byte payload must round-trip exactly, even when it is longer
// than the ring preview and not valid UTF-8 (JSON string escaping would
// mangle it; Data carries it as base64).
func TestJournalFullPayload(t *testing.T) {
	r := New(8)
	j := NewJournal()
	r.SetJournal(j)
	if !r.Recording() {
		t.Fatal("SetJournal must arm ring recording")
	}

	chunk := bytes.Repeat([]byte{0xff, 0x00, 'x'}, 100) // 300 bytes, invalid UTF-8
	r.RecordBytes(KindRead, 3, int64(len(chunk)), 300, false, chunk, nil)
	r.RecordData(KindExpect, 3, 2, -1, false, "cases", "", []byte(`[{"k":1,"p":"*a*"}]`))
	r.Record(KindExit, 3, 0, 0, false, "prog", "")

	evs, err := ParseJSONL(j.Bytes())
	if err != nil {
		t.Fatalf("parse journal: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if !bytes.Equal(evs[0].Data, chunk) {
		t.Fatalf("read payload did not round-trip: %d bytes vs %d", len(evs[0].Data), len(chunk))
	}
	if ring := r.Events(); len(ring[0].Text()) != TextCap {
		t.Fatalf("ring preview should stay capped at %d, got %d", TextCap, len(ring[0].Text()))
	}
	if string(evs[1].Data) != `[{"k":1,"p":"*a*"}]` {
		t.Fatalf("expect case payload = %q", evs[1].Data)
	}
	if evs[2].Data != nil {
		t.Fatalf("string-payload event should have no data, got %q", evs[2].Data)
	}
	if j.Lines() != 3 {
		t.Fatalf("Lines = %d", j.Lines())
	}
}

// The ring keeps only the last N events; the journal keeps all of them.
func TestJournalOutlivesRing(t *testing.T) {
	r := New(4)
	j := NewJournal()
	r.SetJournal(j)
	for i := 0; i < 100; i++ {
		r.Record(KindEval, -1, int64(i), 0, false, "cmd", "")
	}
	if r.Len() != 4 {
		t.Fatalf("ring len = %d", r.Len())
	}
	evs, err := ParseJSONL(j.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 100 {
		t.Fatalf("journal has %d events, want 100", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, e.Seq)
		}
	}
}

func TestFileJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := NewFileJournal(dir, "sess", 256)
	if err != nil {
		t.Fatal(err)
	}
	r := New(8)
	r.SetJournal(j)
	for i := 0; i < 50; i++ {
		r.Record(KindRead, 1, 10, int64(i), false, "abcdefghij", "")
	}
	r.SetJournal(nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs := j.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	all, err := j.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReadJournalDir(dir, "sess")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(all, rec) {
		t.Fatal("ReadJournalDir != ReadAll")
	}
	evs, err := ParseJSONL(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 50 {
		t.Fatalf("got %d events across segments, want 50", len(evs))
	}
}

// The strict schema: unknown kinds, seq regressions, truncated tails and
// garbage all fail with a positioned *ParseError instead of being absorbed.
func TestParseJSONLStrict(t *testing.T) {
	good := `{"seq":1,"t_ns":5,"kind":"read","sid":1,"a":3}` + "\n"

	cases := []struct {
		name string
		in   string
		line int
		want string
	}{
		{"unknown-kind", good + `{"seq":2,"t_ns":6,"kind":"warp","sid":1}` + "\n", 2, "unknown event kind"},
		{"seq-regression", good + `{"seq":1,"t_ns":6,"kind":"eof","sid":1}` + "\n", 2, "seq 1 not after 1"},
		{"truncated-tail", good + `{"seq":2,"t_ns":6,"ki`, 2, "bad event"},
		{"garbage-tail", good + "\x01\x02 not json\n", 2, "bad event"},
		{"garbage-only", "nope\n", 1, "bad event"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs, err := ParseJSONL([]byte(tc.in))
			if err == nil {
				t.Fatalf("want error, got %d events", len(evs))
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not *ParseError: %v", err, err)
			}
			if pe.Line != tc.line {
				t.Fatalf("line = %d, want %d (%v)", pe.Line, tc.line, err)
			}
			if !strings.Contains(pe.Msg, tc.want) {
				t.Fatalf("msg %q missing %q", pe.Msg, tc.want)
			}
			if pe.Offset < 0 || pe.Offset > len(tc.in) {
				t.Fatalf("offset %d out of range", pe.Offset)
			}
		})
	}

	// And the good prefix is still returned alongside the error.
	evs, err := ParseJSONL([]byte(good + "garbage"))
	if err == nil || len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("good prefix not preserved: %v %v", evs, err)
	}
}

// MarshalJSONL must invert ParseJSONL on anything the recorder produced.
func TestMarshalParseFixpoint(t *testing.T) {
	r := New(64)
	j := NewJournal()
	r.SetJournal(j)
	r.Record(KindSpawn, 1, 42, 0, false, "prog", "pty")
	r.RecordBytes(KindRead, 1, 5, 5, false, []byte{0x00, 0xfe, 'a', 'b', 'c'}, nil)
	r.RecordAttempt(1, 0, 5, true, "*b*", []byte("abc"))
	r.Record(KindTimeout, 1, 5, 123456, false, "abc", "")

	for _, src := range [][]byte{j.Bytes(), r.Dump(0)} {
		evs, err := ParseJSONL(src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(MarshalJSONL(evs), src) {
			t.Fatalf("marshal(parse(x)) != x:\n%s\nvs\n%s", MarshalJSONL(evs), src)
		}
	}
}

// The journal hot path renders lines with an append-style encoder instead
// of reflective json.Marshal. The two encodings need not be byte-equal
// (the fast path skips HTML escaping) but must parse back to identical
// events — otherwise a replayed journal would diverge from the canon.
func TestAppendEventJSONLMatchesCanonical(t *testing.T) {
	events := []EventJSON{
		{Seq: 1, TNs: 42, Kind: "spawn", SID: 1, OK: true, Text: "echo", Aux: "virtual"},
		{Seq: 2, TNs: 43, Kind: "read", SID: 1, A: 12, Text: `quote " back \ slash`, Data: []byte{0x00, 0xff, 0xfe, 'x'}},
		{Seq: 3, TNs: 44, Kind: "write", SID: 1, B: -7, Text: "tabs\tand\nnewlines\rand\x01ctrl"},
		{Seq: 4, TNs: 45, Kind: "match", SID: 2, Text: "html <&> unicode    ok"},
		{Seq: 5, TNs: 46, Kind: "eof", SID: 2},
	}
	var fast []byte
	for i := range events {
		fast = appendEventJSONL(fast, &events[i])
	}
	got, err := ParseJSONL(fast)
	if err != nil {
		t.Fatalf("fast encoding does not parse: %v", err)
	}
	want, err := ParseJSONL(MarshalJSONL(events))
	if err != nil {
		t.Fatalf("canonical encoding does not parse: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("fast parse kept %d events, canonical %d", len(got), len(want))
	}
	if !bytes.Equal(MarshalJSONL(got), MarshalJSONL(want)) {
		t.Fatalf("fast and canonical encodings parse to different events:\n%s\nvs\n%s",
			MarshalJSONL(got), MarshalJSONL(want))
	}
}
