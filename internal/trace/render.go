package trace

import (
	"fmt"
	"io"
	"time"
)

// kindVisible says which events each diagnostics level renders. Level 1 is
// the paper's §3.3 view of the dialogue itself — what arrived, what was
// tried, how each expect resolved. Level 2 adds the engine's own moving
// parts (sends, eval dispatches, timers, forgetting, injected faults).
func kindVisible(k Kind, level int) bool {
	if level <= 0 {
		return false
	}
	if level >= 2 {
		return true
	}
	switch k {
	case KindSpawn, KindExit, KindRead, KindAttempt, KindMatch,
		KindTimeout, KindEOF, KindExpect:
		return true
	}
	return false
}

// renderEvent writes the one-line human rendering of e — the exp_internal
// surface. The "expect: does ... match glob pattern ...? yes/no" shape
// follows the diagnostics real expect prints under exp_internal, which is
// itself the paper's §3.3 promise: watch every byte the child produces and
// every pattern attempt against it.
func renderEvent(w io.Writer, e *Event) {
	switch e.Kind {
	case KindSpawn:
		fmt.Fprintf(w, "spawn: %s (spawn_id %d, pid %d, %s)\n", e.Text(), e.SID, e.A, e.Aux())
	case KindExit:
		fmt.Fprintf(w, "close: %s (spawn_id %d)\n", e.Text(), e.SID)
	case KindRead:
		fmt.Fprintf(w, "expect: received (spawn_id %d, %d bytes): %q\n", e.SID, e.A, e.Text())
	case KindWrite:
		fmt.Fprintf(w, "send: sent (spawn_id %d, %d bytes): %q\n", e.SID, e.A, e.Text())
	case KindExpect:
		if e.B < 0 {
			fmt.Fprintf(w, "expect: waiting (spawn_id %d, %d cases, no timeout)\n", e.SID, e.A)
		} else {
			fmt.Fprintf(w, "expect: waiting (spawn_id %d, %d cases, timeout %s)\n",
				e.SID, e.A, time.Duration(e.B))
		}
	case KindAttempt:
		verdict := "no"
		if e.Flag {
			verdict = "yes"
		}
		fmt.Fprintf(w, "expect: does %q (spawn_id %d, %d bytes) match pattern %q? %s\n",
			e.Aux(), e.SID, e.B, e.Text(), verdict)
	case KindMatch:
		fmt.Fprintf(w, "expect: case %d matched (spawn_id %d), consuming %d bytes: %q\n",
			e.A, e.SID, e.B, e.Text())
	case KindTimeout:
		fmt.Fprintf(w, "expect: timeout (spawn_id %d) after %s; unmatched buffer (%d bytes) ends %q\n",
			e.SID, time.Duration(e.B).Round(time.Millisecond), e.A, e.Text())
	case KindEOF:
		if e.Aux() != "" {
			fmt.Fprintf(w, "expect: eof (spawn_id %d, read error %q); unmatched buffer (%d bytes) ends %q\n",
				e.SID, e.Aux(), e.A, e.Text())
		} else {
			fmt.Fprintf(w, "expect: eof (spawn_id %d); unmatched buffer (%d bytes) ends %q\n",
				e.SID, e.A, e.Text())
		}
	case KindEval:
		fmt.Fprintf(w, "tcl: dispatch %s (depth %d, %s)\n", e.Text(), e.B, time.Duration(e.A))
	case KindTimerArm:
		fmt.Fprintf(w, "timer: armed (spawn_id %d, %s)\n", e.SID, time.Duration(e.A))
	case KindTimerFire:
		fmt.Fprintf(w, "timer: fired (spawn_id %d)\n", e.SID)
	case KindForget:
		fmt.Fprintf(w, "match_max: forgot %d bytes (spawn_id %d, %d total)\n", e.A, e.SID, e.B)
	case KindFault:
		fmt.Fprintf(w, "faultify: %s (spawn_id %d)\n", e.Text(), e.SID)
	case KindConfig:
		fmt.Fprintf(w, "config: %s = %d (spawn_id %d)\n", e.Text(), e.A, e.SID)
	default:
		fmt.Fprintf(w, "trace: %s (spawn_id %d) a=%d b=%d %q %q\n",
			e.Kind, e.SID, e.A, e.B, e.Text(), e.Aux())
	}
}

// Render writes the human rendering of every buffered event — the whole
// flight recording as exp_internal would have narrated it live.
func (r *Recorder) Render(w io.Writer) {
	for _, e := range r.Events() {
		e := e
		renderEvent(w, &e)
	}
}
