package trace

import "sync/atomic"

// A Tap is a live subscription to a recorder's event stream: every event
// recorded after Subscribe is rendered to one JSONL line (the same schema
// the journal writes, parseable by ParseJSONL) and delivered on a bounded
// channel. This is how /debug/trace?sid=N streams a live session's
// dialogue out of a running daemon without stopping it.
//
// The contract that keeps taps safe on the hot path: delivery NEVER
// blocks the recorder. A slow or stalled reader overflows its channel and
// loses lines — counted in Dropped — rather than stalling the engine the
// way a blocking journal write never could either.
type Tap struct {
	r       *Recorder
	sid     int32 // -1 matches every session
	ch      chan []byte
	dropped atomic.Int64
	closed  bool // guarded by r.mu
}

// defaultTapBuffer bounds a subscriber's in-flight lines; at ~100 bytes a
// line this is tens of kilobytes per watcher.
const defaultTapBuffer = 1024

// Subscribe attaches a live tap for session sid (-1 for all sessions),
// with a delivery buffer of buf lines (defaultTapBuffer when <= 0).
// Subscribing arms ring recording, like attaching a journal: a stream
// being watched is a stream worth recording. Returns nil on a nil
// recorder.
func (r *Recorder) Subscribe(sid int32, buf int) *Tap {
	if r == nil {
		return nil
	}
	if buf <= 0 {
		buf = defaultTapBuffer
	}
	t := &Tap{r: r, sid: sid, ch: make(chan []byte, buf)}
	r.mu.Lock()
	r.taps = append(r.taps, t)
	r.mu.Unlock()
	r.SetRecording(true)
	return t
}

// fanOutLocked renders ev once and delivers a fresh copy to every
// matching tap, dropping (and counting) on full channels. Caller holds
// r.mu, which is also what orders delivery by seq and excludes Close.
func (r *Recorder) fanOutLocked(ev *Event, payload []byte) {
	rendered := false
	for _, t := range r.taps {
		if t.sid >= 0 && t.sid != ev.SID {
			continue
		}
		if !rendered {
			rendered = true
			e := toJSON(ev)
			e.Data = payload
			r.tapScratch = appendEventJSONL(r.tapScratch[:0], &e)
		}
		line := make([]byte, len(r.tapScratch))
		copy(line, r.tapScratch)
		select {
		case t.ch <- line:
		default:
			t.dropped.Add(1)
		}
	}
}

// Events is the delivery channel: one complete JSONL line (with trailing
// newline) per recorded event, closed by Close.
func (t *Tap) Events() <-chan []byte {
	if t == nil {
		return nil
	}
	return t.ch
}

// Dropped counts lines lost to a full delivery buffer.
func (t *Tap) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Close detaches the tap and closes its channel. Idempotent; recording
// stays armed (other taps, the ring, or a journal may still need it).
func (t *Tap) Close() {
	if t == nil {
		return
	}
	r := t.r
	r.mu.Lock()
	if t.closed {
		r.mu.Unlock()
		return
	}
	t.closed = true
	for i, other := range r.taps {
		if other == t {
			r.taps = append(r.taps[:i], r.taps[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	close(t.ch)
}
