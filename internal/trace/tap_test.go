package trace

import (
	"bytes"
	"fmt"
	"testing"
)

// drainTap collects every line currently buffered on the tap without
// blocking (delivery is synchronous with Record, so by the time Record
// returns the line is either queued or dropped).
func drainTap(t *Tap) [][]byte {
	var out [][]byte
	for {
		select {
		case line, ok := <-t.Events():
			if !ok {
				return out
			}
			out = append(out, line)
		default:
			return out
		}
	}
}

func TestTapStreamsParseableJSONL(t *testing.T) {
	r := New(64)
	tap := r.Subscribe(-1, 16)
	defer tap.Close()
	if !r.Recording() {
		t.Fatal("Subscribe did not arm recording")
	}
	for i := 0; i < 5; i++ {
		r.Record(KindRead, 3, int64(i), 0, true, fmt.Sprintf("line-%d", i), "")
	}
	lines := drainTap(tap)
	if len(lines) != 5 {
		t.Fatalf("tap delivered %d lines, want 5", len(lines))
	}
	// Every delivered line is journal-schema JSONL: the strict parser
	// accepts the concatenation.
	evs, err := ParseJSONL(bytes.Join(lines, nil))
	if err != nil {
		t.Fatalf("ParseJSONL(tap output): %v", err)
	}
	for i, e := range evs {
		if e.SID != 3 || e.Kind != "read" {
			t.Errorf("event %d: sid=%d kind=%q", i, e.SID, e.Kind)
		}
		if want := fmt.Sprintf("line-%d", i); e.Text != want {
			t.Errorf("event %d: text %q, want %q", i, e.Text, want)
		}
	}
}

func TestTapSIDFilter(t *testing.T) {
	r := New(64)
	all := r.Subscribe(-1, 32)
	only7 := r.Subscribe(7, 32)
	defer all.Close()
	defer only7.Close()
	for sid := int32(5); sid <= 9; sid++ {
		r.Record(KindMatch, sid, 0, 0, true, "x", "")
	}
	if got := len(drainTap(all)); got != 5 {
		t.Errorf("unfiltered tap got %d lines, want 5", got)
	}
	lines := drainTap(only7)
	if len(lines) != 1 {
		t.Fatalf("sid=7 tap got %d lines, want 1", len(lines))
	}
	evs, err := ParseJSONL(lines[0])
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if evs[0].SID != 7 {
		t.Errorf("filtered tap delivered sid %d, want 7", evs[0].SID)
	}
}

func TestTapNeverBlocksAndCountsDrops(t *testing.T) {
	r := New(64)
	tap := r.Subscribe(-1, 2) // tiny buffer, nobody reading
	defer tap.Close()
	for i := 0; i < 10; i++ {
		r.Record(KindWrite, 1, 0, 0, false, "spam", "")
	}
	if got := tap.Dropped(); got != 8 {
		t.Errorf("Dropped = %d, want 8 (10 recorded, buffer 2)", got)
	}
	if got := len(drainTap(tap)); got != 2 {
		t.Errorf("buffered lines = %d, want 2", got)
	}
	// The recorder itself lost nothing: the ring kept recording while the
	// tap overflowed.
	if got := r.Total(); got != 10 {
		t.Errorf("ring Total = %d, want 10", got)
	}
}

func TestTapCloseDetachesAndIsIdempotent(t *testing.T) {
	r := New(64)
	tap := r.Subscribe(-1, 4)
	r.Record(KindRead, 1, 0, 0, false, "before", "")
	tap.Close()
	tap.Close() // second close must not panic or double-close the channel
	r.Record(KindRead, 1, 0, 0, false, "after", "")

	// The pre-close line is still readable, then the channel reports closed.
	lines := drainTap(tap)
	if len(lines) != 1 {
		t.Fatalf("got %d lines after close, want the 1 pre-close line", len(lines))
	}
	if _, ok := <-tap.Events(); ok {
		t.Error("channel still open after Close")
	}
	if tap.Dropped() != 0 {
		t.Errorf("post-close records counted as drops: %d", tap.Dropped())
	}
}

func TestTapNilRecorderAndNilTap(t *testing.T) {
	var r *Recorder
	tap := r.Subscribe(-1, 0)
	if tap != nil {
		t.Fatal("nil recorder Subscribe returned a tap")
	}
	tap.Close()
	if tap.Dropped() != 0 {
		t.Error("nil tap Dropped != 0")
	}
	if tap.Events() != nil {
		t.Error("nil tap Events() != nil")
	}
}

func TestTapCoexistsWithJournal(t *testing.T) {
	r := New(64)
	j := NewJournal()
	r.SetJournal(j)
	tap := r.Subscribe(-1, 16)
	defer tap.Close()
	for i := 0; i < 3; i++ {
		r.Record(KindEval, 2, int64(i), 0, false, "cmd", "")
	}
	tapped := bytes.Join(drainTap(tap), nil)
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	// Tap and journal render the same schema from the same stream.
	if got, want := tapped, j.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("tap and journal diverge:\ntap:\n%s\njournal:\n%s", got, want)
	}
}
