// Package trace is the engine's flight recorder: a fixed-size ring of
// structured events capturing everything the paper's §3.3 debugging aids
// let a user watch — every chunk a child produces, every pattern tried
// against the buffer and its verdict, spawns and exits, timers arming and
// firing, match_max forgetting, eval dispatches, injected faults.
//
// The recorder exists because the evidence behind a failure (a 10-second
// timeout, an EOF surprise, a conformance divergence) is otherwise gone by
// the time the failure is reported: the bytes were consumed, the pattern
// attempts left no residue. With the ring armed, the engine can attach the
// last N events — a bounded, structured flight recording — to every such
// report.
//
// Overhead contract:
//
//   - nil recorder or disabled mode: one nil check plus one atomic load on
//     every instrumentation site, zero allocations. Call sites guard event
//     construction with On(), so no argument marshalling happens either.
//   - recording: events are copied into preallocated fixed-size slots under
//     a mutex; steady state allocates nothing.
//   - diagnostics (the exp_internal rendering): formatted output per event;
//     allocation is accepted, this mode is for humans watching a run.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one flight-recorder event.
type Kind uint8

// Event kinds. The A/B/Flag/Text/Aux fields of Event are kind-specific;
// see the constructors in the core engine for the exact conventions.
const (
	// KindSpawn: a process was spawned. A=pid, Text=program name, Aux=transport.
	KindSpawn Kind = iota
	// KindExit: a session was closed/removed. Text=program name.
	KindExit
	// KindRead: a chunk of child output arrived. A=bytes, B=total seen,
	// Text=preview.
	KindRead
	// KindWrite: bytes were sent to the child. A=bytes, Text=preview.
	KindWrite
	// KindExpect: an expect call began. A=case count, B=timeout (ns; -1
	// means forever).
	KindExpect
	// KindAttempt: one pattern was tried against the buffer on one wakeup.
	// A=case index, B=buffer length, Flag=matched, Text=pattern,
	// Aux=buffer preview.
	KindAttempt
	// KindMatch: an expect call completed with a match. A=case index,
	// B=consumed bytes, Text=matched-text preview.
	KindMatch
	// KindTimeout: an expect call gave up. A=unmatched buffer length,
	// B=elapsed ns, Text=buffer tail.
	KindTimeout
	// KindEOF: the child closed its output. A=unmatched buffer length,
	// Text=buffer tail, Aux=read error (if not a clean EOF).
	KindEOF
	// KindEval: a Tcl command was dispatched. A=duration ns, B=depth,
	// Text=command name.
	KindEval
	// KindTimerArm: an expect timeout timer was armed. A=duration ns.
	KindTimerArm
	// KindTimerFire: an armed timer fired before a match.
	KindTimerFire
	// KindForget: match_max pushed bytes out of the buffer. A=bytes
	// forgotten now, B=total forgotten.
	KindForget
	// KindFault: the fault-injection transport perturbed the stream.
	// Text=fault label.
	KindFault
	// KindConfig: a session knob changed mid-run (match_max, …). A=new
	// value, Text=knob name. Journaled so replay reproduces the semantics
	// the knob controls.
	KindConfig

	numKinds
)

var kindNames = [numKinds]string{
	"spawn", "exit", "read", "write", "expect", "attempt", "match",
	"timeout", "eof", "eval", "timer-arm", "timer-fire", "forget", "fault",
	"config",
}

func (k Kind) String() string {
	if k >= numKinds {
		return fmt.Sprintf("kind-%d", int(k))
	}
	return kindNames[k]
}

// KindFromString inverts Kind.String (used by dump parsing).
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Preview bounds. Event payloads are previews by design: the recorder is a
// flight recorder, not a transcript — bounded memory, bounded dump size.
const (
	// TextCap bounds the primary payload (chunk preview, pattern text, …).
	TextCap = 64
	// AuxCap bounds the secondary payload (buffer preview on attempts, …).
	AuxCap = 48
)

// Event is one fixed-size flight-recorder slot. All fields are inline (no
// pointers), so recording an event is a copy into the ring and the ring's
// memory use is capacity × sizeof(Event), forever.
type Event struct {
	// Seq is the 1-based global sequence number (monotonic, never wraps;
	// the ring holding only the last events is what wraps).
	Seq uint64
	// At is nanoseconds since the recorder was created (monotonic clock).
	At int64
	// Kind classifies the event; A, B, Flag, Text, Aux are kind-specific.
	Kind Kind
	// SID is the engine spawn id the event belongs to (-1 when none).
	SID  int32
	A    int64
	B    int64
	Flag bool

	textLen uint8
	auxLen  uint8
	text    [TextCap]byte
	aux     [AuxCap]byte
}

// Text returns the primary payload preview.
func (e *Event) Text() string { return string(e.text[:e.textLen]) }

// Aux returns the secondary payload preview.
func (e *Event) Aux() string { return string(e.aux[:e.auxLen]) }

// setText/setAux copy a bounded preview into the fixed slot. They take
// strings and byte slices without allocating (the copy target is inline).
func (e *Event) setText(s string) {
	n := copy(e.text[:], s)
	e.textLen = uint8(n)
}

func (e *Event) setTextBytes(b []byte) {
	n := copy(e.text[:], b)
	e.textLen = uint8(n)
}

func (e *Event) setAux(s string) {
	n := copy(e.aux[:], s)
	e.auxLen = uint8(n)
}

func (e *Event) setAuxBytes(b []byte) {
	n := copy(e.aux[:], b)
	e.auxLen = uint8(n)
}

// DefaultCapacity is the ring size engines arm by default: enough to hold
// the full pattern-attempt history of a stuck expect loop (hundreds of
// wakeups) while keeping the resident cost around a hundred kilobytes.
const DefaultCapacity = 512

// Recorder is the flight recorder: a bounded ring of events plus an
// optional live diagnostics rendering (the exp_internal surface) plus an
// optional durable journal (the replay surface).
//
// The mode word packs both knobs into one atomic so the disabled fast path
// is a single load: 0 means fully off; otherwise the low bit arms ring
// recording and the upper bits carry the diagnostics level (0 = silent
// ring-only flight recording, 1 = dialogue diagnostics, 2 = verbose).
// A nil *Recorder is a valid no-op sink everywhere.
type Recorder struct {
	mode atomic.Int32
	// jrn is the durable journal sink (nil = ring-only). Kept out of the
	// mode word so Journaling() stays one pointer load for the call sites
	// that build full payloads only when a journal will keep them.
	jrn   atomic.Pointer[Journal]
	epoch time.Time

	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever recorded; ring index = next % len(ring)
	diag io.Writer

	// taps are live event subscribers (the /debug/trace streaming surface);
	// tapScratch is the shared line-render buffer. Both guarded by mu; see
	// tap.go for the never-block fan-out contract.
	taps       []*Tap
	tapScratch []byte
}

// New builds a recorder with the given ring capacity (DefaultCapacity when
// n <= 0). The recorder starts disabled; arm it with SetRecording or
// SetDiag.
func New(n int) *Recorder {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Recorder{ring: make([]Event, n), epoch: time.Now()}
}

const recordBit = 1

// On reports whether the recorder is armed at all. This is the guard every
// instrumentation site checks before composing an event: nil check plus one
// atomic load, no allocation.
func (r *Recorder) On() bool {
	return r != nil && r.mode.Load() != 0
}

// Recording reports whether ring recording is armed.
func (r *Recorder) Recording() bool {
	return r != nil && r.mode.Load()&recordBit != 0
}

// SetRecording arms or disarms ring recording, preserving the diagnostics
// level. Disarming with diagnostics off returns the recorder to the
// zero-overhead disabled state.
func (r *Recorder) SetRecording(on bool) {
	if r == nil {
		return
	}
	for {
		old := r.mode.Load()
		var next int32
		if on {
			next = old | recordBit
		} else {
			next = old &^ recordBit
		}
		if r.mode.CompareAndSwap(old, next) {
			return
		}
	}
}

// DiagLevel returns the live-diagnostics level (0 = off).
func (r *Recorder) DiagLevel() int {
	if r == nil {
		return 0
	}
	return int(r.mode.Load() >> 1)
}

// SetDiag sets the live-diagnostics level and sink — the exp_internal
// surface. Level 0 turns rendering off (ring recording, if armed, keeps
// running); level 1 renders the dialogue-visible events (received chunks,
// pattern attempts and verdicts, spawns, matches, timeouts, EOFs); level 2
// additionally renders sends, eval dispatches, timers, forgets, and faults.
// Arming diagnostics also arms ring recording: a run being watched is a run
// worth having a flight recording of.
func (r *Recorder) SetDiag(level int, w io.Writer) {
	if r == nil {
		return
	}
	if level < 0 {
		level = 0
	}
	if level > 2 {
		level = 2
	}
	r.mu.Lock()
	r.diag = w
	r.mu.Unlock()
	for {
		old := r.mode.Load()
		next := int32(level<<1) | (old & recordBit)
		if level > 0 {
			next |= recordBit
		}
		if r.mode.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetJournal attaches (or, with nil, detaches) a durable journal: from now
// on every recorded event is also appended to j as one JSON line carrying
// the FULL payload (the ring slot keeps only its bounded preview). A
// journal implies ring recording — replay needs the event stream, and a
// run worth journaling is a run worth a flight recording of — so attaching
// arms the record bit. Detaching leaves recording armed.
func (r *Recorder) SetJournal(j *Journal) {
	if r == nil {
		return
	}
	r.jrn.Store(j)
	if j != nil {
		r.SetRecording(true)
	}
}

// Journaling reports whether a journal sink is attached. Call sites that
// must build a full payload (an expect call serializing its case list)
// check this so ring-only runs keep their allocation profile.
func (r *Recorder) Journaling() bool {
	return r != nil && r.jrn.Load() != nil
}

// Journal returns the attached journal (nil when ring-only).
func (r *Recorder) Journal() *Journal {
	if r == nil {
		return nil
	}
	return r.jrn.Load()
}

// Reset drops all buffered events (mode is unchanged).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.next = 0
	r.mu.Unlock()
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Total returns how many events have ever been recorded (including those
// the ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Len returns how many events are currently buffered.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *Recorder) lenLocked() int {
	if r.next > uint64(len(r.ring)) {
		return len(r.ring)
	}
	return int(r.next)
}

// record is the shared slow path: copy one event into the ring (if armed),
// append it to the journal (if attached), and render it (if the
// diagnostics level shows its kind). Callers have already checked On().
//
// data is the full byte payload destined for the journal only; when nil,
// textB (the uncapped byte payload, if any) stands in for it, so journaled
// reads/writes/matches keep every byte while the ring slot keeps the
// bounded preview.
func (r *Recorder) record(k Kind, sid int32, a, b int64, flag bool, text string, textB []byte, aux string, auxB []byte, data []byte) {
	mode := r.mode.Load()
	if mode == 0 {
		return
	}
	var ev Event
	ev.At = int64(time.Since(r.epoch))
	ev.Kind = k
	ev.SID = sid
	ev.A, ev.B, ev.Flag = a, b, flag
	if textB != nil {
		ev.setTextBytes(textB)
	} else {
		ev.setText(text)
	}
	if auxB != nil {
		ev.setAuxBytes(auxB)
	} else {
		ev.setAux(aux)
	}
	jrn := r.jrn.Load()

	r.mu.Lock()
	if mode&recordBit != 0 {
		r.next++
		ev.Seq = r.next
		r.ring[(r.next-1)%uint64(len(r.ring))] = ev
		payload := data
		if payload == nil {
			payload = textB
		}
		if jrn != nil {
			// Append inside the lock so journal order is seq order. Full
			// payloads ride in Data ([]byte → base64) because JSON string
			// escaping is lossy for arbitrary bytes.
			jrn.appendEvent(&ev, payload)
		}
		if len(r.taps) > 0 {
			r.fanOutLocked(&ev, payload)
		}
	}
	diag, level := r.diag, int(mode>>1)
	if diag != nil && kindVisible(k, level) {
		// Render inside the lock so concurrent writers (pump goroutine vs
		// script goroutine) interleave whole lines, never fragments.
		renderEvent(diag, &ev)
	}
	r.mu.Unlock()
}

// Record logs an event with string payloads.
func (r *Recorder) Record(k Kind, sid int32, a, b int64, flag bool, text, aux string) {
	if !r.On() {
		return
	}
	r.record(k, sid, a, b, flag, text, nil, aux, nil, nil)
}

// RecordBytes logs an event whose payloads are byte slices (chunk
// previews); the slices are copied, never retained. When a journal is
// attached the text payload is journaled in full, not preview-capped.
func (r *Recorder) RecordBytes(k Kind, sid int32, a, b int64, flag bool, text, aux []byte) {
	if !r.On() {
		return
	}
	r.record(k, sid, a, b, flag, "", text, "", aux, nil)
}

// RecordData logs an event carrying an explicit full payload for the
// journal (an expect call's serialized case list, say) alongside the usual
// bounded previews. Ring-only recorders just drop data.
func (r *Recorder) RecordData(k Kind, sid int32, a, b int64, flag bool, text, aux string, data []byte) {
	if !r.On() {
		return
	}
	r.record(k, sid, a, b, flag, text, nil, aux, nil, data)
}

// RecordAttempt logs one pattern attempt: pattern text plus a preview of
// the buffer it was tried against.
func (r *Recorder) RecordAttempt(sid int32, caseIdx int, bufLen int, matched bool, pattern string, buf []byte) {
	if !r.On() {
		return
	}
	r.record(KindAttempt, sid, int64(caseIdx), int64(bufLen), matched, pattern, nil, "", previewTail(buf, AuxCap), nil)
}

// previewTail bounds b to its last n bytes (the tail is where the action
// is: new output arrives at the end of the match buffer).
func previewTail(b []byte, n int) []byte {
	if len(b) > n {
		return b[len(b)-n:]
	}
	return b
}

// Events returns the buffered events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.lenLocked()
	out := make([]Event, 0, n)
	start := r.next - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, r.ring[(start+i)%uint64(len(r.ring))])
	}
	return out
}

// EventJSON is the dump schema: one JSON object per line, stable field
// names, previews as (JSON-escaped) strings. Journal lines additionally
// carry Data — the FULL byte payload, base64-encoded — because previews
// are bounded and JSON string escaping cannot round-trip arbitrary bytes;
// Data is what makes a journal byte-for-byte replayable.
type EventJSON struct {
	Seq  uint64 `json:"seq"`
	TNs  int64  `json:"t_ns"`
	Kind string `json:"kind"`
	SID  int32  `json:"sid"`
	A    int64  `json:"a,omitempty"`
	B    int64  `json:"b,omitempty"`
	OK   bool   `json:"ok,omitempty"`
	Text string `json:"text,omitempty"`
	Aux  string `json:"aux,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// KindID resolves the kind name back to its Kind (false for unknown).
func (e *EventJSON) KindID() (Kind, bool) { return KindFromString(e.Kind) }

func toJSON(e *Event) EventJSON {
	return EventJSON{
		Seq: e.Seq, TNs: e.At, Kind: e.Kind.String(), SID: e.SID,
		A: e.A, B: e.B, OK: e.Flag,
		// Previews are sanitized to valid UTF-8 so marshal∘parse is a
		// fixpoint (the JSON encoder escapes invalid bytes asymmetrically).
		// Exact bytes, when they matter, travel in Data.
		Text: strings.ToValidUTF8(e.Text(), "�"),
		Aux:  strings.ToValidUTF8(e.Aux(), "�"),
	}
}

// DumpJSONL writes the last n buffered events (all of them when n <= 0) as
// JSON lines. This is the machine-readable flight recording attached to
// timeout errors and conformance divergence reports.
func (r *Recorder) DumpJSONL(w io.Writer, n int) error {
	for _, e := range r.tail(n) {
		j := toJSON(&e)
		line, err := json.Marshal(j)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Dump returns the last n events (all when n <= 0) as a JSONL byte slice.
func (r *Recorder) Dump(n int) []byte {
	if r == nil {
		return nil
	}
	var sb sliceWriter
	r.DumpJSONL(&sb, n)
	return sb.b
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (r *Recorder) tail(n int) []Event {
	evs := r.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// ParseError reports where a dump or journal stopped being parseable: the
// 1-based line number and the byte offset of that line's start. Truncated
// tails, garbage lines, unknown kinds, and seq regressions all land here —
// a journal that fails to parse must fail loudly and positioned, never
// feed a replay a silently shortened history.
type ParseError struct {
	Line   int
	Offset int
	Msg    string
	Err    error
}

func (e *ParseError) Error() string {
	s := fmt.Sprintf("trace: line %d (byte %d): %s", e.Line, e.Offset, e.Msg)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *ParseError) Unwrap() error { return e.Err }

// ParseJSONL decodes a DumpJSONL flight recording or journal (tests,
// tooling, and the replay engine use this). The schema is strict: every
// line must be a complete JSON event, the kind must name a known Kind,
// and seq must be strictly increasing. Errors are *ParseError carrying the
// offending line's position; the events decoded before it are returned so
// a caller can report how far the recording was good.
func ParseJSONL(data []byte) ([]EventJSON, error) {
	var out []EventJSON
	var prevSeq uint64
	lineNo := 0
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			line := data[start:i]
			lineStart := start
			start = i + 1
			if len(line) == 0 {
				continue
			}
			lineNo++
			var e EventJSON
			if err := json.Unmarshal(line, &e); err != nil {
				return out, &ParseError{Line: lineNo, Offset: lineStart,
					Msg: fmt.Sprintf("bad event %q", bound(line, 80)), Err: err}
			}
			if _, ok := KindFromString(e.Kind); !ok {
				return out, &ParseError{Line: lineNo, Offset: lineStart,
					Msg: fmt.Sprintf("unknown event kind %q", e.Kind)}
			}
			if e.Seq <= prevSeq {
				return out, &ParseError{Line: lineNo, Offset: lineStart,
					Msg: fmt.Sprintf("seq %d not after %d", e.Seq, prevSeq)}
			}
			prevSeq = e.Seq
			out = append(out, e)
		}
	}
	return out, nil
}

// bound truncates a line for inclusion in an error message.
func bound(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}

// MarshalJSONL renders events back to the exact JSONL bytes DumpJSONL and
// the journal produce — ParseJSONL∘MarshalJSONL is a fixpoint, which is
// what lets the fuzz harness prove round-trips lossless and the replay
// engine diff two recordings as bytes.
func MarshalJSONL(events []EventJSON) []byte {
	var sb sliceWriter
	for i := range events {
		line, err := json.Marshal(&events[i])
		if err != nil {
			continue // fixed schema: cannot happen
		}
		sb.Write(append(line, '\n'))
	}
	return sb.b
}
