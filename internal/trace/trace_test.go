package trace

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := New(8)
	r.SetRecording(true)
	for i := 0; i < 20; i++ {
		r.Record(KindRead, 0, int64(i), 0, false, fmt.Sprintf("chunk-%d", i), "")
	}
	if got := r.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8 (ring capacity)", got)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("Events returned %d, want 8", len(evs))
	}
	// The ring holds exactly the last 8, oldest first, seqs 13..20.
	for i, e := range evs {
		wantSeq := uint64(13 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if want := fmt.Sprintf("chunk-%d", 12+i); e.Text() != want {
			t.Errorf("event %d: Text = %q, want %q", i, e.Text(), want)
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	r := New(64)
	r.SetRecording(true)
	const writers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.RecordBytes(KindWrite, int32(w), int64(i), 0, false, []byte("abc"), nil)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Total(); got != writers*each {
		t.Fatalf("Total = %d, want %d", got, writers*each)
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("Len = %d, want 64", len(evs))
	}
	// Sequence numbers of the survivors are contiguous and end at Total.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != writers*each {
		t.Errorf("last seq = %d, want %d", evs[len(evs)-1].Seq, writers*each)
	}
}

// TestDisabledPathAllocationFree pins the overhead contract: a disabled (or
// nil) recorder costs one check and zero allocations at every site, even
// sites that would record byte previews.
func TestDisabledPathAllocationFree(t *testing.T) {
	r := New(16) // never armed
	chunk := []byte("some child output that would be previewed")
	if allocs := testing.AllocsPerRun(200, func() {
		if r.On() {
			t.Fatal("recorder should be disabled")
		}
		r.RecordBytes(KindRead, 0, int64(len(chunk)), 0, false, chunk, nil)
		r.RecordAttempt(0, 1, len(chunk), false, "*pattern*", chunk)
	}); allocs > 0 {
		t.Errorf("disabled recorder allocates %.1f objects per site, want 0", allocs)
	}

	var nilRec *Recorder
	if allocs := testing.AllocsPerRun(200, func() {
		nilRec.Record(KindRead, 0, 1, 2, false, "x", "")
		if nilRec.On() || nilRec.Recording() {
			t.Fatal("nil recorder must be off")
		}
	}); allocs > 0 {
		t.Errorf("nil recorder allocates %.1f objects per site, want 0", allocs)
	}
}

// TestEnabledRingAllocationFree: steady-state ring recording copies into
// preallocated slots and allocates nothing per event.
func TestEnabledRingAllocationFree(t *testing.T) {
	r := New(32)
	r.SetRecording(true)
	chunk := []byte("payload")
	if allocs := testing.AllocsPerRun(200, func() {
		r.RecordBytes(KindRead, 3, 7, 0, false, chunk, nil)
	}); allocs > 0 {
		t.Errorf("armed ring recording allocates %.1f objects per event, want 0", allocs)
	}
}

func TestDumpJSONLRoundTrip(t *testing.T) {
	r := New(16)
	r.SetRecording(true)
	r.Record(KindSpawn, 0, 1234, 0, false, "rogue", "pty")
	r.RecordAttempt(0, 2, 11, false, `*Str: 18*`, []byte("Level: 1 \"q\""))
	r.Record(KindTimeout, 0, 11, int64(10e9), false, "Level: 1", "")

	dump := r.Dump(0)
	evs, err := ParseJSONL(dump)
	if err != nil {
		t.Fatalf("ParseJSONL: %v\n%s", err, dump)
	}
	if len(evs) != 3 {
		t.Fatalf("parsed %d events, want 3:\n%s", len(evs), dump)
	}
	if evs[0].Kind != "spawn" || evs[0].Text != "rogue" || evs[0].Aux != "pty" || evs[0].A != 1234 {
		t.Errorf("spawn event round-trip: %+v", evs[0])
	}
	if evs[1].Kind != "attempt" || evs[1].Text != `*Str: 18*` || evs[1].OK {
		t.Errorf("attempt event round-trip: %+v", evs[1])
	}
	if evs[1].Aux != "Level: 1 \"q\"" {
		t.Errorf("attempt aux round-trip: %q", evs[1].Aux)
	}
	if evs[2].Kind != "timeout" || evs[2].B != int64(10e9) {
		t.Errorf("timeout event round-trip: %+v", evs[2])
	}
	if k, ok := KindFromString(evs[1].Kind); !ok || k != KindAttempt {
		t.Errorf("KindFromString(%q) = %v, %v", evs[1].Kind, k, ok)
	}
}

func TestDumpLastN(t *testing.T) {
	r := New(32)
	r.SetRecording(true)
	for i := 0; i < 10; i++ {
		r.Record(KindEval, -1, int64(i), 0, false, "cmd", "")
	}
	evs, err := ParseJSONL(r.Dump(3))
	if err != nil || len(evs) != 3 {
		t.Fatalf("Dump(3): %d events, err %v", len(evs), err)
	}
	if evs[0].Seq != 8 || evs[2].Seq != 10 {
		t.Errorf("tail seqs = %d..%d, want 8..10", evs[0].Seq, evs[2].Seq)
	}
}

func TestPreviewBounds(t *testing.T) {
	r := New(4)
	r.SetRecording(true)
	long := strings.Repeat("x", 500)
	r.Record(KindRead, 0, 500, 0, false, long, long)
	e := r.Events()[0]
	if len(e.Text()) != TextCap {
		t.Errorf("text preview len = %d, want %d", len(e.Text()), TextCap)
	}
	if len(e.Aux()) != AuxCap {
		t.Errorf("aux preview len = %d, want %d", len(e.Aux()), AuxCap)
	}
	// RecordAttempt keeps the buffer *tail* — that's where fresh output is.
	r.RecordAttempt(0, 0, 500, false, "*p*", []byte(strings.Repeat("a", 400)+"TAIL-MARKER"))
	e = r.Events()[1]
	if !strings.HasSuffix(e.Aux(), "TAIL-MARKER") {
		t.Errorf("attempt preview lost the tail: %q", e.Aux())
	}
}

func TestDiagRenderingLevels(t *testing.T) {
	var out bytes.Buffer
	r := New(16)
	r.SetDiag(1, &out)
	if !r.Recording() {
		t.Fatal("SetDiag should arm ring recording")
	}
	r.RecordBytes(KindRead, 0, 5, 0, false, []byte("hello"), nil)
	r.RecordAttempt(0, 0, 5, true, "*hello*", []byte("hello"))
	r.RecordBytes(KindWrite, 0, 3, 0, false, []byte("ok\r"), nil) // level-2 only
	got := out.String()
	if !strings.Contains(got, `received (spawn_id 0, 5 bytes): "hello"`) {
		t.Errorf("level 1 missing received line:\n%s", got)
	}
	if !strings.Contains(got, `match pattern "*hello*"? yes`) {
		t.Errorf("level 1 missing attempt verdict:\n%s", got)
	}
	if strings.Contains(got, "send: sent") {
		t.Errorf("level 1 rendered a level-2 event:\n%s", got)
	}

	out.Reset()
	r.SetDiag(2, &out)
	r.RecordBytes(KindWrite, 0, 3, 0, false, []byte("ok\r"), nil)
	if !strings.Contains(out.String(), "send: sent") {
		t.Errorf("level 2 missing send line:\n%s", out.String())
	}

	// Level 0 silences rendering but keeps the flight recording running.
	out.Reset()
	r.SetDiag(0, &out)
	r.RecordBytes(KindRead, 0, 2, 0, false, []byte("hi"), nil)
	if out.Len() != 0 {
		t.Errorf("level 0 still rendered:\n%s", out.String())
	}
	if !r.Recording() {
		t.Error("turning diag off should not stop the flight recording")
	}
}

func TestRenderWholeRecording(t *testing.T) {
	r := New(8)
	r.SetRecording(true)
	r.Record(KindSpawn, 1, 99, 0, false, "fsck-sim", "virtual")
	r.Record(KindForget, 1, 120, 2120, false, "", "")
	r.Record(KindFault, 1, 1, 0, false, "read transient (injected EAGAIN)", "")
	var out bytes.Buffer
	r.Render(&out)
	for _, want := range []string{"spawn: fsck-sim", "match_max: forgot 120 bytes", "faultify: read transient"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("rendering missing %q:\n%s", want, out.String())
		}
	}
}

func TestReset(t *testing.T) {
	r := New(8)
	r.SetRecording(true)
	r.Record(KindRead, 0, 1, 0, false, "x", "")
	r.Reset()
	if r.Len() != 0 || len(r.Events()) != 0 || len(r.Dump(0)) != 0 {
		t.Error("Reset left events behind")
	}
}
