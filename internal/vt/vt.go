// Package vt is a small terminal emulator: a rows×columns character
// screen maintained from a byte stream containing VT100/ANSI control
// sequences. It answers the paper's §8 open question — "If expect had a
// built-in terminal emulator, could one look for 'regions' of character
// graphics?" — affirmatively: a Session with screen tracking enabled can
// match glob patterns against rows and rectangular regions of the screen
// a curses program paints, instead of against the raw escape-sequence
// soup.
//
// The emulator implements the sequences curses-era programs emit: cursor
// addressing (CUP), relative motion (CUU/CUD/CUF/CUB), erase in display
// and line (ED, EL), carriage control (\r \n \b \t), scrolling at the
// bottom margin, and ignores rendition (SGR) and the other sequences it
// does not render.
package vt

import (
	"strings"
	"sync"
)

// Screen is a terminal display. All methods are safe for concurrent use;
// the expect engine writes from its pump goroutine while the dialogue
// thread inspects regions.
type Screen struct {
	mu      sync.Mutex
	rows    int
	cols    int
	cells   [][]byte
	curR    int
	curC    int
	savedR  int
	savedC  int
	parser  escState
	param   []byte
	written int64
}

type escState int

const (
	stGround escState = iota
	stEsc             // saw ESC
	stCSI             // saw ESC [
)

// NewScreen creates a rows×cols screen of spaces, cursor at home.
func NewScreen(rows, cols int) *Screen {
	if rows <= 0 {
		rows = 24
	}
	if cols <= 0 {
		cols = 80
	}
	s := &Screen{rows: rows, cols: cols}
	s.cells = make([][]byte, rows)
	for r := range s.cells {
		s.cells[r] = blankRow(cols)
	}
	return s
}

func blankRow(cols int) []byte {
	row := make([]byte, cols)
	for i := range row {
		row[i] = ' '
	}
	return row
}

// Size returns the screen dimensions.
func (s *Screen) Size() (rows, cols int) { return s.rows, s.cols }

// Written returns the total bytes consumed.
func (s *Screen) Written() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// Write feeds terminal output into the screen. It never fails.
func (s *Screen) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.written += int64(len(p))
	for _, c := range p {
		s.consume(c)
	}
	return len(p), nil
}

func (s *Screen) consume(c byte) {
	switch s.parser {
	case stEsc:
		switch c {
		case '[':
			s.parser = stCSI
			s.param = s.param[:0]
		case 'c': // RIS: full reset
			s.clearAll()
			s.curR, s.curC = 0, 0
			s.savedR, s.savedC = 0, 0
			s.parser = stGround
		case '7': // DECSC: save cursor
			s.savedR, s.savedC = s.curR, s.curC
			s.parser = stGround
		case '8': // DECRC: restore cursor
			s.curR, s.curC = s.savedR, s.savedC
			s.parser = stGround
		case 'D': // IND: index (down, scrolling)
			s.lineFeed()
			s.parser = stGround
		case 'M': // RI: reverse index (up, scrolling at top)
			if s.curR == 0 {
				s.scrollDown(0)
			} else {
				s.curR--
			}
			s.parser = stGround
		case '(', ')': // charset selection: swallow one byte
			s.parser = stGround // next byte is the charset; drop it crudely
		default:
			s.parser = stGround
		}
		return
	case stCSI:
		if c >= '0' && c <= '9' || c == ';' || c == '?' {
			s.param = append(s.param, c)
			return
		}
		s.csi(c)
		s.parser = stGround
		return
	}
	// Ground state.
	switch c {
	case 0x1b:
		s.parser = stEsc
	case '\n':
		s.lineFeed()
	case '\r':
		s.curC = 0
	case '\b':
		if s.curC > 0 {
			s.curC--
		}
	case '\t':
		s.curC = (s.curC/8 + 1) * 8
		if s.curC >= s.cols {
			s.curC = s.cols - 1
		}
	case 0x07: // BEL
	default:
		if c < 0x20 {
			return
		}
		if s.curC >= s.cols {
			// Wrap.
			s.curC = 0
			s.lineFeed()
		}
		s.cells[s.curR][s.curC] = c
		s.curC++
	}
}

func (s *Screen) lineFeed() {
	s.curR++
	if s.curR >= s.rows {
		// Scroll up one line.
		copy(s.cells, s.cells[1:])
		s.cells[s.rows-1] = blankRow(s.cols)
		s.curR = s.rows - 1
	}
}

// csi executes one CSI sequence with final byte c.
func (s *Screen) csi(final byte) {
	args := s.csiArgs()
	arg := func(i, def int) int {
		if i < len(args) && args[i] > 0 {
			return args[i]
		}
		return def
	}
	switch final {
	case 'H', 'f': // CUP: cursor position (1-based)
		s.curR = clamp(arg(0, 1)-1, 0, s.rows-1)
		s.curC = clamp(arg(1, 1)-1, 0, s.cols-1)
	case 'A':
		s.curR = clamp(s.curR-arg(0, 1), 0, s.rows-1)
	case 'B':
		s.curR = clamp(s.curR+arg(0, 1), 0, s.rows-1)
	case 'C':
		s.curC = clamp(s.curC+arg(0, 1), 0, s.cols-1)
	case 'D':
		s.curC = clamp(s.curC-arg(0, 1), 0, s.cols-1)
	case 'J': // ED: erase display
		switch arg(0, 0) {
		case 0: // cursor to end
			s.clearRange(s.curR, s.curC, s.rows-1, s.cols-1)
		case 1: // start to cursor
			s.clearRange(0, 0, s.curR, s.curC)
		case 2:
			s.clearAll()
		}
	case 'K': // EL: erase line
		switch arg(0, 0) {
		case 0:
			for c := s.curC; c < s.cols; c++ {
				s.cells[s.curR][c] = ' '
			}
		case 1:
			for c := 0; c <= s.curC && c < s.cols; c++ {
				s.cells[s.curR][c] = ' '
			}
		case 2:
			s.cells[s.curR] = blankRow(s.cols)
		}
	case 'L': // IL: insert blank lines at the cursor row
		for k := 0; k < arg(0, 1); k++ {
			s.scrollDown(s.curR)
		}
	case 'M': // DL: delete lines at the cursor row
		for k := 0; k < arg(0, 1); k++ {
			s.deleteLine(s.curR)
		}
	case 's': // ANSI save cursor
		s.savedR, s.savedC = s.curR, s.curC
	case 'u': // ANSI restore cursor
		s.curR, s.curC = s.savedR, s.savedC
	case 'G': // CHA: cursor to absolute column
		s.curC = clamp(arg(0, 1)-1, 0, s.cols-1)
	case 'm': // SGR: rendition — ignored (we track characters, not attrs)
	case 'h', 'l': // modes — ignored
	default: // anything else: ignore
	}
}

func (s *Screen) csiArgs() []int {
	raw := string(s.param)
	raw = strings.TrimPrefix(raw, "?")
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, ";")
	args := make([]int, len(parts))
	for i, p := range parts {
		n := 0
		for _, d := range p {
			if d >= '0' && d <= '9' {
				n = n*10 + int(d-'0')
			}
		}
		args[i] = n
	}
	return args
}

// scrollDown shifts rows at and below `from` down one, blanking `from`.
func (s *Screen) scrollDown(from int) {
	for r := s.rows - 1; r > from; r-- {
		s.cells[r] = s.cells[r-1]
	}
	s.cells[from] = blankRow(s.cols)
}

// deleteLine removes row r, shifting everything below it up.
func (s *Screen) deleteLine(r int) {
	copy(s.cells[r:], s.cells[r+1:])
	s.cells[s.rows-1] = blankRow(s.cols)
}

func (s *Screen) clearAll() {
	for r := range s.cells {
		s.cells[r] = blankRow(s.cols)
	}
}

// clearRange blanks from (r0,c0) to (r1,c1) inclusive in reading order.
func (s *Screen) clearRange(r0, c0, r1, c1 int) {
	for r := r0; r <= r1 && r < s.rows; r++ {
		cs, ce := 0, s.cols-1
		if r == r0 {
			cs = c0
		}
		if r == r1 {
			ce = c1
		}
		for c := cs; c <= ce && c < s.cols; c++ {
			s.cells[r][c] = ' '
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Cursor returns the cursor position (0-based row, column).
func (s *Screen) Cursor() (row, col int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curR, s.curC
}

// Row returns one screen row as text (trailing blanks trimmed).
func (s *Screen) Row(r int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r < 0 || r >= s.rows {
		return ""
	}
	return strings.TrimRight(string(s.cells[r]), " ")
}

// Text renders the whole screen, rows joined by newlines, trailing
// blanks trimmed.
func (s *Screen) Text() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sb strings.Builder
	for r := 0; r < s.rows; r++ {
		sb.WriteString(strings.TrimRight(string(s.cells[r]), " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Region extracts the rectangle (r0,c0)–(r1,c1) inclusive, one line per
// row, trailing blanks trimmed — the §8 "regions of character graphics".
func (s *Screen) Region(r0, c0, r1, c1 int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	r0 = clamp(r0, 0, s.rows-1)
	r1 = clamp(r1, 0, s.rows-1)
	c0 = clamp(c0, 0, s.cols-1)
	c1 = clamp(c1, 0, s.cols-1)
	var sb strings.Builder
	for r := r0; r <= r1; r++ {
		line := s.cells[r][c0 : c1+1]
		sb.WriteString(strings.TrimRight(string(line), " "))
		if r < r1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
