package vt

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func write(t *testing.T, s *Screen, data string) {
	t.Helper()
	if _, err := s.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
}

func TestPlainText(t *testing.T) {
	s := NewScreen(5, 20)
	write(t, s, "hello")
	if got := s.Row(0); got != "hello" {
		t.Errorf("Row(0) = %q", got)
	}
	if r, c := s.Cursor(); r != 0 || c != 5 {
		t.Errorf("cursor = %d,%d", r, c)
	}
}

func TestNewlineAndCarriageReturn(t *testing.T) {
	s := NewScreen(5, 20)
	write(t, s, "one\r\ntwo\r\nthree")
	if s.Row(0) != "one" || s.Row(1) != "two" || s.Row(2) != "three" {
		t.Errorf("rows = %q %q %q", s.Row(0), s.Row(1), s.Row(2))
	}
	// Bare \r overwrites.
	write(t, s, "\rTHREE")
	if s.Row(2) != "THREE" {
		t.Errorf("after CR overwrite: %q", s.Row(2))
	}
}

func TestBackspaceAndTab(t *testing.T) {
	s := NewScreen(2, 20)
	write(t, s, "ab\bC")
	if s.Row(0) != "aC" {
		t.Errorf("backspace: %q", s.Row(0))
	}
	s2 := NewScreen(2, 20)
	write(t, s2, "x\ty")
	if got := s2.Row(0); got != "x       y" {
		t.Errorf("tab: %q", got)
	}
}

func TestWrapAndScroll(t *testing.T) {
	s := NewScreen(3, 4)
	write(t, s, "abcdefgh") // wraps at 4
	if s.Row(0) != "abcd" || s.Row(1) != "efgh" {
		t.Errorf("wrap: %q / %q", s.Row(0), s.Row(1))
	}
	write(t, s, "ijkl") // third row
	write(t, s, "mnop") // forces scroll
	if s.Row(0) != "efgh" {
		t.Errorf("scroll lost: top = %q", s.Row(0))
	}
	if s.Row(2) != "mnop" {
		t.Errorf("bottom = %q", s.Row(2))
	}
}

func TestCursorAddressing(t *testing.T) {
	s := NewScreen(10, 40)
	write(t, s, "\x1b[3;5Hmark")
	if got := s.Row(2); got != "    mark" {
		t.Errorf("CUP: %q", got)
	}
	// Relative moves.
	write(t, s, "\x1b[2A\x1b[4DX") // up 2, left 4
	if r, _ := s.Cursor(); r != 0 {
		t.Errorf("cursor row after CUU = %d", r)
	}
	if !strings.Contains(s.Row(0), "X") {
		t.Errorf("row0 = %q", s.Row(0))
	}
}

func TestClearScreen(t *testing.T) {
	s := NewScreen(5, 20)
	write(t, s, "garbage everywhere")
	write(t, s, "\x1b[2J\x1b[H")
	if s.Text() != strings.Repeat("\n", 5) {
		t.Errorf("screen not cleared: %q", s.Text())
	}
	if r, c := s.Cursor(); r != 0 || c != 0 {
		t.Errorf("cursor = %d,%d", r, c)
	}
}

func TestEraseLine(t *testing.T) {
	s := NewScreen(3, 20)
	write(t, s, "keep-this-tail")
	write(t, s, "\x1b[5G") // CHA to column 5
	write(t, s, "\r12345\x1b[K")
	if got := s.Row(0); got != "12345" {
		t.Errorf("EL0: %q", got)
	}
}

func TestSGRIgnored(t *testing.T) {
	s := NewScreen(2, 30)
	write(t, s, "\x1b[1;33mbold yellow\x1b[0m plain")
	if got := s.Row(0); got != "bold yellow plain" {
		t.Errorf("SGR residue: %q", got)
	}
}

func TestRegion(t *testing.T) {
	s := NewScreen(6, 30)
	write(t, s, "\x1b[2;3Habc\x1b[3;3Hdef\x1b[4;3Hghi")
	got := s.Region(1, 2, 3, 4)
	want := "abc\ndef\nghi"
	if got != want {
		t.Errorf("Region = %q, want %q", got, want)
	}
}

// TestRogueStatusRegion is the §8 scenario: a curses program paints a
// screen with cursor addressing; the status line is readable as a region
// even though it was drawn piecemeal and out of order.
func TestRogueStatusRegion(t *testing.T) {
	s := NewScreen(24, 80)
	// Draw the status line first (bottom), then the map above it, the way
	// curses repaints damage.
	write(t, s, "\x1b[24;1HLevel: 1  Gold: 0  Hp: 12(12)  Str: 18(18)  Arm: 4  Exp: 1/0")
	write(t, s, "\x1b[10;20H@")
	write(t, s, "\x1b[9;19H---")
	status := s.Row(23)
	if !strings.Contains(status, "Str: 18") {
		t.Errorf("status region: %q", status)
	}
	if !strings.Contains(s.Region(9, 18, 9, 22), "@") {
		t.Errorf("map region: %q", s.Region(9, 18, 9, 22))
	}
}

func TestResetSequence(t *testing.T) {
	s := NewScreen(3, 10)
	write(t, s, "junk")
	write(t, s, "\x1bc")
	if s.Row(0) != "" {
		t.Errorf("RIS did not clear: %q", s.Row(0))
	}
}

func TestControlCharsIgnored(t *testing.T) {
	s := NewScreen(2, 20)
	write(t, s, "a\x07b\x00c\x0fd")
	if got := s.Row(0); got != "abcd" {
		t.Errorf("control chars leaked: %q", got)
	}
}

func TestWrittenCounts(t *testing.T) {
	s := NewScreen(2, 10)
	write(t, s, "12345")
	if s.Written() != 5 {
		t.Errorf("Written = %d", s.Written())
	}
}

// Property: writing arbitrary bytes never panics and never grows the
// screen beyond its dimensions.
func TestArbitraryBytesQuick(t *testing.T) {
	f := func(data []byte) bool {
		s := NewScreen(8, 20)
		s.Write(data)
		rows, cols := s.Size()
		if rows != 8 || cols != 20 {
			return false
		}
		text := s.Text()
		return strings.Count(text, "\n") == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: cursor stays in bounds under arbitrary CSI motion sequences.
func TestCursorBoundsQuick(t *testing.T) {
	f := func(moves []uint8) bool {
		s := NewScreen(10, 10)
		for _, mv := range moves {
			dir := "ABCD"[mv%4]
			fmt.Fprintf(s, "\x1b[%d%c", int(mv/4), dir)
		}
		r, c := s.Cursor()
		return r >= 0 && r < 10 && c >= 0 && c < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSaveRestoreCursor(t *testing.T) {
	s := NewScreen(10, 40)
	write(t, s, "\x1b[5;7H")  // position
	write(t, s, "\x1b7")      // DECSC
	write(t, s, "\x1b[1;1HX") // wander off
	write(t, s, "\x1b8Y")     // DECRC then draw
	if got := s.Region(4, 6, 4, 6); got != "Y" {
		t.Errorf("restored draw = %q, screen:\n%s", got, s.Text())
	}
	// ANSI variants s/u.
	write(t, s, "\x1b[8;3H\x1b[s\x1b[1;1H\x1b[uZ")
	if got := s.Region(7, 2, 7, 2); got != "Z" {
		t.Errorf("CSI s/u draw = %q", got)
	}
}

func TestInsertDeleteLines(t *testing.T) {
	s := NewScreen(5, 10)
	write(t, s, "aaa\r\nbbb\r\nccc")
	// Insert one line at row 1 (where bbb is).
	write(t, s, "\x1b[2;1H\x1b[L")
	if s.Row(1) != "" || s.Row(2) != "bbb" || s.Row(3) != "ccc" {
		t.Errorf("after IL: %q %q %q", s.Row(1), s.Row(2), s.Row(3))
	}
	// Delete that blank line again.
	write(t, s, "\x1b[2;1H\x1b[M")
	if s.Row(1) != "bbb" || s.Row(2) != "ccc" {
		t.Errorf("after DL: %q %q", s.Row(1), s.Row(2))
	}
}

func TestReverseIndexScrolls(t *testing.T) {
	s := NewScreen(3, 10)
	write(t, s, "top\r\nmid\r\nbot")
	write(t, s, "\x1b[1;1H\x1bM") // RI at top row scrolls content down
	if s.Row(0) != "" || s.Row(1) != "top" || s.Row(2) != "mid" {
		t.Errorf("after RI: %q %q %q", s.Row(0), s.Row(1), s.Row(2))
	}
}

func TestCursorColumnAbsolute(t *testing.T) {
	s := NewScreen(3, 20)
	write(t, s, "abcdef\x1b[3GX")
	if s.Row(0) != "abXdef" {
		t.Errorf("CHA: %q", s.Row(0))
	}
}
