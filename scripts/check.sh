#!/bin/sh
# Repo health gate: formatting, vet, and the full test suite under the race
# detector. CI and pre-commit both run exactly this.
set -e
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go test -race ./...
