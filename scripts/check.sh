#!/bin/sh
# Repo health gate: formatting, vet, and the full test suite under the race
# detector. CI and pre-commit both run exactly this.
set -e
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...

# Unit tier: everything except the wall-clock-heavy conformance script
# matrix (which gates itself on -short and runs in full below).
go test -race -short ./...

# Order-independence leg: rerun the unit tier with shuffled test and
# subtest order. Tests that secretly depend on a predecessor's side
# effects (shared binaries, leftover sessions, package state) fail here
# with the shuffle seed printed for replay.
go test -count=1 -shuffle=on -short ./...

# Differential conformance: replay every shipped script and engine
# scenario through the matcher × eval-cache × fault-schedule matrix —
# including the sharded-scheduler variants (-shards 1 and 8) — and
# require identical outcomes. Divergences print a seed + minimized fault
# schedule as the repro recipe.
go test -race -count=1 ./internal/conformance

# Bytecode-vm leg: the cross-mode equivalence table, step-limit and hook
# parity, golden disassembly, and the mutation check proving the
# differential harness has teeth — all under the race detector, plus a
# goexpect run of a shipped script with -evalmode vm.
go test -race -count=1 -run 'TestVM|TestEvalMode' ./internal/tcl
go run ./cmd/goexpect -evalmode vm -transport pipe -sims -q scripts/passwd.exp >/dev/null

# Sharded-scheduler matrix leg: the shard unit tests plus a goexpect run
# under -shards, proving the flag-wired path end to end.
go test -race -count=1 -run 'Shard|Scheduler' ./internal/core
go run ./cmd/goexpect -shards 8 -transport pipe -sims -q scripts/passwd.exp >/dev/null

# Soak tier: 2000 sessions across 8 shards for 5s under the race
# detector (halting on the first report), with leak, drop, and
# conservation checks. Skipped from the unit tier by -short.
GORACE=halt_on_error=1 go test -race -count=1 -run TestSoak2kSessions ./internal/load

# Replay leg: the journal/replay engine unit tier plus the journaled
# conformance matrix under the race detector. Every scenario is recorded
# to a JSONL journal and re-driven byte-for-byte; dispositions must be
# identical, and any divergence carries its journal as the repro artifact.
go test -race -count=1 ./internal/trace ./internal/replay
go test -race -count=1 -run 'Journal|Replay' ./internal/conformance

# Crash/recovery battery: SIGKILL expectd mid-soak at a seeded point with
# 2k live sessions, restore every session from its checkpoint against a
# fresh daemon, and require the conservation law (matches + timeouts +
# EOFs == dialogues) with zero lost dialogues — plus the SIGUSR1
# checkpoint-all / -restore round-trip through a live driven daemon.
go test -race -count=1 -run 'TestCrashRecoverySoak|TestExpectdCheckpointRestore' ./internal/load

# Gateway leg: the framed-protocol codec tier, the mux client/server
# battery (quota refusal, head-of-line isolation, GOAWAY-then-drain), the
# transport-contract and conformance mux variants, the gateway-mode
# workbench conservation run, and the mux crash battery — SIGKILL a
# gateway hosting 2048 multiplexed sessions, restore every one from its
# checkpoint over a fresh pooled connection, and require conservation.
go test -race -count=1 ./internal/netx/mux ./internal/netx
go test -race -count=1 -run 'TestTransportContract/mux|TestConformanceScenarios' ./internal/proc ./internal/conformance
go test -race -count=1 -run 'TestMuxModeConservation|TestMuxCrashRecoverySoak' ./internal/load

# Fuzz smoke: a short budget per differential target. The real corpora
# live in testdata/fuzz/ and always run as plain tests above; this adds a
# few CPU-minutes of fresh exploration to every gate.
go test -race -fuzz=FuzzGlobEquivalence -fuzztime=10s ./internal/pattern
go test -race -fuzz=FuzzEvalCacheEquivalence -fuzztime=10s ./internal/tcl
go test -race -fuzz=FuzzVMEquivalence -fuzztime=10s ./internal/tcl
go test -race -fuzz=FuzzParseRoundTrip -fuzztime=10s ./internal/tcl
go test -race -fuzz=FuzzShardHash -fuzztime=10s ./internal/core
go test -race -fuzz=FuzzJournalRoundTrip -fuzztime=10s ./internal/trace
go test -race -fuzz=FuzzMuxFrameRoundTrip -fuzztime=10s ./internal/netx/mux

# Perf snapshot + trace-overhead guard: regenerate the hot-path benchmarks
# (E15: eval/glob/gap-buffer) and the flight-recorder overhead + latency
# histograms (E16) into BENCH_3.json, and fail if a present-but-disabled
# recorder costs the expect hot loop more than 2% per wakeup.
go run ./cmd/benchreport -exp e15,e16 -json BENCH_3.json -guard 2

# Shard-scaling snapshot + tail-latency guard: rerun the E17 session
# sweep against the committed BENCH_4.json and fail if the 1k-session
# sharded p99 wakeup-to-match latency regressed by more than 10%, then
# refresh the snapshot.
go run ./cmd/benchreport -exp e17 -baseline BENCH_4.json -p99guard 10 -json BENCH_4.json

# Network-scaling snapshot + guard: build expectd, run the E18 loopback
# socket sweep (64 → 10k sessions against one daemon), require the
# daemon to drain clean on SIGTERM, and fail if 10k sharded costs more
# than 2x the 64-session goroutine baseline per dialogue.
go run ./cmd/benchreport -exp e18 -json BENCH_5.json -netguard 2

# Zero-copy ingest snapshot + guards: rerun the socket sweep on the
# segment-ownership path against the frozen copying referee. memguard:
# copied bytes and ingest allocations per dialogue at 10k sharded
# sessions must both drop >= 40% vs legacy. goroguard: ingest goroutines
# at 10k connections stay O(shards) — at most 256 above the drivers,
# not one reader per connection.
go run ./cmd/benchreport -exp e19 -json BENCH_6.json -memguard 40 -goroguard 256

# Replay economics snapshot + guards: rerun the E20 journal/checkpoint
# pricing. replayguard: a journal-armed soak may cost at most 10% more
# per dialogue than ring-only. ckptguard: the checkpoint/restore
# round-trip p99 may not regress more than 25% against the committed
# BENCH_7.json, then refresh the snapshot.
go run ./cmd/benchreport -exp e20 -baseline BENCH_7.json -replayguard 10 -ckptguard 25 -json BENCH_7.json

# Telemetry plane leg: the registry/exposition unit tier and the admin
# endpoint battery under the race detector, then the two end-to-end
# checks — /debug/sessions agreeing with the load workbench's
# conservation law at a parked instant, and the expectd admin protocol
# (admin line before ready, plane readable mid-drain, listener closed
# last).
go test -race -count=1 ./internal/metrics ./internal/admin
go test -race -count=1 -run 'TestAdminSessionsConservation|TestExpectdAdminProtocol' ./internal/load

# Live-daemon curl leg: boot expectd with -admin, scrape /metrics and
# /debug/sessions with curl against the advertised address, and require
# well-formed output plus a clean SIGTERM exit.
tmpd=$(mktemp -d)
go build -o "$tmpd/expectd" ./cmd/expectd
"$tmpd/expectd" -serve echo -admin 127.0.0.1:0 >"$tmpd/out" &
epid=$!
for _ in $(seq 1 100); do
	grep -q '^expectd: ready$' "$tmpd/out" 2>/dev/null && break
	sleep 0.1
done
grep -q '^expectd: ready$' "$tmpd/out"
adminaddr=$(awk '/^expectd: admin /{print $3}' "$tmpd/out")
curl -fsS "http://$adminaddr/metrics" | grep -q '# TYPE'
curl -fsS "http://$adminaddr/debug/sessions" | grep -q '"sessions"'
kill -TERM "$epid"
wait "$epid"
rm -rf "$tmpd"

# Telemetry economics snapshot + guard: rerun the E21 pricing into
# BENCH_8.json. statsguard: scraping /metrics at 1 Hz may cost at most
# 3% per dialogue, and an armed-but-unscraped plane at most a third of
# that (1%).
go run ./cmd/benchreport -exp e21 -json BENCH_8.json -statsguard 3

# Bytecode-vm economics snapshot + guard: rerun the E22 pricing into
# BENCH_9.json. vmguard: the vm must stay at least 3x faster than the
# cached evaluator on the E15 eval and expr benchmarks, and its
# differential sweep must show zero divergences from the classic referee.
go run ./cmd/benchreport -exp e22 -json BENCH_9.json -vmguard 3

# Gateway-scaling snapshot + guard: build expectd, start two -mux
# gateway processes, and drive the E23 sweep — 100k concurrent sessions
# multiplexed over ≤64 pooled TCP connections per process — into
# BENCH_10.json. muxguard: the 100k-session per-dialogue cost may be at
# most 2x the committed 10k one-socket-per-session baseline (BENCH_5's
# E18 sharded cell), and both gateways must drain clean on SIGTERM.
go run ./cmd/benchreport -exp e23 -json BENCH_10.json -muxguard 2
